// Compressed-page study: the same corpus built with fixed-slot and with
// delta+FOR compressed leaf/stab pages (DESIGN.md §15), comparing page
// footprint and the pages an XR-stack join actually touches, plus the
// streaming bulk load (XrTree::BulkLoadFromFile) at 10x scale to show the
// build never materializes the element list.
//
// Usage: compression [--json <path>] [--require-ratio R]
//   --json PATH       write machine-readable results to PATH
//   --require-ratio R exit nonzero unless
//                     compressed (leaf+stab pages) <= R * fixed pages.
//                     CI runs with R=0.4 (the paper-motivated 2.5x+ fan-out
//                     target with margin).
//
// Environment knobs:
//   XR_COMP_SCALE  elements per dataset side (default 60000)
//   XR_COMP_POOL   measurement pool size in pages (default 256)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "join/xr_stack.h"
#include "storage/element_file.h"

namespace xrtree {
namespace bench {
namespace {

uint64_t EnvU64(const char* name, uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::strtoull(v, nullptr, 10);
}

struct FormatResult {
  std::string format;
  uint64_t elements = 0;
  uint64_t leaf_pages = 0;
  uint64_t stab_pages = 0;
  uint64_t ps_dir_pages = 0;
  uint64_t internal_nodes = 0;
  double bytes_per_element = 0;
  double build_seconds = 0;
  uint64_t join_pages_touched = 0;  ///< buffer hits + misses over the join
  uint64_t join_misses = 0;
  uint64_t pairs = 0;
};

FormatResult BuildAndJoin(const Dataset& ds, bool compressed,
                          uint64_t pool_pages) {
  FormatResult r;
  r.format = compressed ? "compressed" : "fixed";
  BenchDb db(8192);
  XrTreeOptions xopt;
  xopt.compressed_pages = compressed;
  PageId a_root, d_root;
  uint64_t a_leaf_pages = 0;
  {
    XrTree a_tree(db.pool(), kInvalidPageId, xopt);
    XrTree d_tree(db.pool(), kInvalidPageId, xopt);
    auto t0 = std::chrono::steady_clock::now();
    XR_CHECK_OK(a_tree.BulkLoad(ds.ancestors));
    XR_CHECK_OK(d_tree.BulkLoad(ds.descendants));
    auto t1 = std::chrono::steady_clock::now();
    r.build_seconds = std::chrono::duration<double>(t1 - t0).count();
    a_root = a_tree.root();
    d_root = d_tree.root();
    // Footprint over BOTH trees: the ratio guard covers leaf and stab
    // pages, the two layers the codec compresses.
    StabStats sa = a_tree.ComputeStabStats().value();
    StabStats sd = d_tree.ComputeStabStats().value();
    r.leaf_pages = sa.leaf_pages + sd.leaf_pages;
    r.stab_pages = sa.stab_pages + sd.stab_pages;
    r.ps_dir_pages = sa.ps_dir_pages + sd.ps_dir_pages;
    r.internal_nodes = sa.internal_nodes + sd.internal_nodes;
    a_leaf_pages = sa.leaf_pages;
    (void)a_leaf_pages;
  }
  r.elements = ds.ancestors.size() + ds.descendants.size();
  r.bytes_per_element =
      static_cast<double>((r.leaf_pages + r.stab_pages) * kPageSize) /
      static_cast<double>(r.elements);

  // Pages touched per join: every FetchPage the join issues, resident or
  // not, against a cold measurement pool.
  db.SwapPool(pool_pages);
  XrTree a_xr(db.pool(), a_root);
  XrTree d_xr(db.pool(), d_root);
  JoinOptions options;
  options.materialize = false;
  IoStats before = db.pool()->stats();
  JoinOutput out = XrStackJoin(a_xr, d_xr, options).value();
  db.pool()->WaitForPrefetchIdle();
  IoStats io = db.pool()->stats() - before;
  r.join_pages_touched = io.buffer_hits + io.buffer_misses;
  r.join_misses = io.buffer_misses;
  r.pairs = out.stats.output_pairs;
  return r;
}

void PrintResult(const FormatResult& r) {
  std::printf(
      "%-10s leaf=%llu stab=%llu psdir=%llu bytes/elem=%.2f "
      "join_touched=%llu misses=%llu pairs=%llu build=%.2fs\n",
      r.format.c_str(), (unsigned long long)r.leaf_pages,
      (unsigned long long)r.stab_pages, (unsigned long long)r.ps_dir_pages,
      r.bytes_per_element, (unsigned long long)r.join_pages_touched,
      (unsigned long long)r.join_misses, (unsigned long long)r.pairs,
      r.build_seconds);
}

std::string FormatJson(const FormatResult& r) {
  JsonObject o;
  o.Set("format", r.format);
  o.Set("elements", r.elements);
  o.Set("leaf_pages", r.leaf_pages);
  o.Set("stab_pages", r.stab_pages);
  o.Set("leaf_plus_stab_pages", r.leaf_pages + r.stab_pages);
  o.Set("ps_dir_pages", r.ps_dir_pages);
  o.Set("internal_nodes", r.internal_nodes);
  o.Set("bytes_per_element", r.bytes_per_element);
  o.Set("build_seconds", r.build_seconds);
  o.Set("join_pages_touched", r.join_pages_touched);
  o.Set("join_misses", r.join_misses);
  o.Set("pairs", r.pairs);
  return o.Dump();
}

}  // namespace
}  // namespace bench
}  // namespace xrtree

int main(int argc, char** argv) {
  using namespace xrtree;
  using namespace xrtree::bench;

  double require_ratio = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--require-ratio" && i + 1 < argc) {
      require_ratio = std::strtod(argv[i + 1], nullptr);
    }
  }
  const std::string json_path = ParseJsonPathArg(argc, argv);
  const uint64_t scale = EnvU64("XR_COMP_SCALE", 60000);
  const uint64_t pool_pages = EnvU64("XR_COMP_POOL", 256);

  PrintHeader("Compressed leaf & stab pages (delta+FOR mini-blocks)");
  std::printf("scale=%llu elements/side, measurement pool=%llu pages\n\n",
              (unsigned long long)scale, (unsigned long long)pool_pages);

  auto ds = MakeDepartmentDataset(scale);
  XR_CHECK_OK(ds.status());

  FormatResult fixed = BuildAndJoin(*ds, false, pool_pages);
  FormatResult comp = BuildAndJoin(*ds, true, pool_pages);
  PrintResult(fixed);
  PrintResult(comp);

  uint64_t fixed_pages = fixed.leaf_pages + fixed.stab_pages;
  uint64_t comp_pages = comp.leaf_pages + comp.stab_pages;
  double page_ratio = fixed_pages > 0
                          ? static_cast<double>(comp_pages) / fixed_pages
                          : 1.0;
  double fanout_gain = comp.leaf_pages > 0
                           ? static_cast<double>(fixed.leaf_pages) /
                                 static_cast<double>(comp.leaf_pages)
                           : 0.0;
  double join_ratio =
      fixed.join_pages_touched > 0
          ? static_cast<double>(comp.join_pages_touched) /
                static_cast<double>(fixed.join_pages_touched)
          : 1.0;
  bool pairs_match = fixed.pairs == comp.pairs;
  std::printf(
      "\nleaf+stab pages: %llu -> %llu (ratio %.3f, leaf fan-out gain "
      "%.2fx)\njoin pages touched: %llu -> %llu (ratio %.3f)\n",
      (unsigned long long)fixed_pages, (unsigned long long)comp_pages,
      page_ratio, fanout_gain, (unsigned long long)fixed.join_pages_touched,
      (unsigned long long)comp.join_pages_touched, join_ratio);

  // Streaming bulk load at 10x: the corpus lives in an on-disk ElementFile
  // and streams into compressed pages through a bounded lookahead — the
  // element list is never materialized by the build.
  const uint64_t big_scale = scale * 10;
  double stream_seconds = 0;
  uint64_t stream_elements = 0;
  uint64_t stream_leaf_pages = 0;
  {
    BenchDb db(8192);
    ElementFile file(db.pool());
    {
      auto big = MakeDepartmentDataset(big_scale);
      XR_CHECK_OK(big.status());
      XR_CHECK_OK(file.Build(big->ancestors));
      stream_elements = big->ancestors.size();
    }  // generated list is gone before the tree build starts
    XrTreeOptions xopt;
    xopt.compressed_pages = true;
    XrTree tree(db.pool(), kInvalidPageId, xopt);
    auto t0 = std::chrono::steady_clock::now();
    XR_CHECK_OK(tree.BulkLoadFromFile(file));
    auto t1 = std::chrono::steady_clock::now();
    stream_seconds = std::chrono::duration<double>(t1 - t0).count();
    XR_CHECK_OK(tree.CheckConsistency());
    stream_leaf_pages = tree.ComputeStabStats().value().leaf_pages;
  }
  std::printf(
      "\nstreaming bulk load (10x): %llu elements -> %llu compressed leaf "
      "pages in %.2fs\n",
      (unsigned long long)stream_elements,
      (unsigned long long)stream_leaf_pages, stream_seconds);

  if (!json_path.empty()) {
    JsonObject top;
    top.Set("bench", "compression");
    top.Set("scale", scale);
    top.Set("pool_pages", pool_pages);
    top.SetRaw("fixed", FormatJson(fixed));
    top.SetRaw("compressed", FormatJson(comp));
    top.Set("page_ratio", page_ratio);
    top.Set("leaf_fanout_gain", fanout_gain);
    top.Set("join_pages_ratio", join_ratio);
    top.Set("pairs_match", pairs_match);
    JsonObject stream;
    stream.Set("scale", big_scale);
    stream.Set("elements", stream_elements);
    stream.Set("leaf_pages", stream_leaf_pages);
    stream.Set("build_seconds", stream_seconds);
    top.SetRaw("streaming", stream.Dump());
    if (!WriteTextFile(json_path, top.Dump())) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (!pairs_match) {
    std::printf("\nFAIL: join pair counts diverged between formats\n");
    return 1;
  }
  if (require_ratio > 0 && page_ratio > require_ratio) {
    std::printf(
        "\nFAIL: compressed leaf+stab pages are %.3fx the fixed format "
        "(required <= %.3fx)\n",
        page_ratio, require_ratio);
    return 1;
  }
  if (require_ratio > 0) {
    std::printf("\nratio guard: %.3f <= %.3f\n", page_ratio, require_ratio);
  }
  return 0;
}
