#ifndef XRTREE_COMMON_RESULT_H_
#define XRTREE_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace xrtree {

/// A value-or-Status holder in the style of arrow::Result / absl::StatusOr.
/// Constructing from a value yields an OK result; constructing from a non-OK
/// Status yields an error result.
template <typename T>
class Result {
 public:
  /// Implicit from value — mirrors absl::StatusOr so `return value;` works.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error Status so `return Status::NotFound(...);` works.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() &&
           "Result<T> must not be constructed from an OK Status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  /// Precondition: ok().
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

/// Assigns `lhs` from a Result expression, early-returning its Status
/// on error. `lhs` may be a declaration: XR_ASSIGN_OR_RETURN(auto x, F());
#define XR_ASSIGN_OR_RETURN(lhs, rexpr)                   \
  XR_ASSIGN_OR_RETURN_IMPL_(                              \
      XR_RESULT_CONCAT_(_xr_result, __LINE__), lhs, rexpr)

#define XR_RESULT_CONCAT_INNER_(a, b) a##b
#define XR_RESULT_CONCAT_(a, b) XR_RESULT_CONCAT_INNER_(a, b)
#define XR_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                              \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).value()

}  // namespace xrtree

#endif  // XRTREE_COMMON_RESULT_H_
