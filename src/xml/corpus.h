#ifndef XRTREE_XML_CORPUS_H_
#define XRTREE_XML_CORPUS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "xml/document.h"

namespace xrtree {

/// Document identifier within a corpus.
using DocId = uint32_t;

/// A collection of region-encoded documents sharing one global position
/// space: document d occupies [base(d), base(d+1)), so regions from
/// different documents can never contain each other and the join predicate
/// needs no explicit DocId equality test (§2.2's condition (1) holds by
/// construction). This is the "set of elements defined by certain
/// predicates" that indexes are built over (§3.2).
class Corpus {
 public:
  Corpus() = default;

  Corpus(Corpus&&) = default;
  Corpus& operator=(Corpus&&) = default;

  /// Adds `doc` (need not be encoded yet — it is (re)encoded at this
  /// corpus's next free base position). Returns the new DocId.
  DocId AddDocument(Document doc);

  const Document& document(DocId id) const { return docs_[id]; }
  size_t num_documents() const { return docs_.size(); }

  /// First position of document `id`.
  Position base(DocId id) const { return bases_[id]; }

  /// DocId owning position `p` (for reporting), or num_documents() if past
  /// the end.
  DocId DocOf(Position p) const;

  /// Merged, start-sorted element list for `tag` across all documents.
  ElementList ElementsWithTag(std::string_view tag) const;

  /// Total elements across all documents.
  uint64_t TotalElements() const;

 private:
  std::vector<Document> docs_;
  std::vector<Position> bases_;
  Position next_base_ = 1;
};

}  // namespace xrtree

#endif  // XRTREE_XML_CORPUS_H_
