#include "join/parent_child.h"

#include "join/bplus_join.h"
#include "join/stack_tree_desc.h"
#include "join/xr_stack.h"

namespace xrtree {

Result<JoinOutput> StackTreeDescParentChildJoin(const ElementFile& parents,
                                                const ElementFile& children) {
  JoinOptions options;
  options.parent_child = true;
  return StackTreeDescJoin(parents, children, options);
}

Result<JoinOutput> BPlusParentChildJoin(const BTree& parents,
                                        const BTree& children) {
  JoinOptions options;
  options.parent_child = true;
  return BPlusJoin(parents, children, options);
}

Result<JoinOutput> XrStackParentChildJoin(const XrTree& parents,
                                          const XrTree& children) {
  JoinOptions options;
  options.parent_child = true;
  return XrStackJoin(parents, children, options);
}

}  // namespace xrtree
