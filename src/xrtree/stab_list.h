#ifndef XRTREE_XRTREE_STAB_LIST_H_
#define XRTREE_XRTREE_STAB_LIST_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"
#include "xrtree/xrtree_page.h"

namespace xrtree {

/// Manages one internal node's stab list: a chain of stab pages sorted by
/// (key, start) plus the ps-directory page of Fig. 4.
///
/// The handle is a value object over (head, ps_dir); mutations update these
/// members and the caller writes them back into the owning node's header
/// (XrTree does this via SyncStabRefs).
///
/// Queries use the directory + per-PSL early termination, giving the 1-2
/// I/O PSL access the paper claims (§3.3). Mutations read-modify-write the
/// chain: stab lists are small ("zero to a few pages", §3.3), so an O(chain)
/// rewrite keeps the displacement cost C_DP at a handful of I/Os while
/// making the intricate maintenance of Algorithms 1-2 tractable.
class StabList {
 public:
  /// `compressed` selects the page format WriteAll emits (DESIGN.md §15);
  /// reads are always per-page format-transparent, so a handle opened with
  /// the "wrong" flag still reads correctly and merely rewrites the chain
  /// into its own format on the next mutation.
  StabList(BufferPool* pool, PageId head, PageId ps_dir,
           bool use_ps_dir = true, bool compressed = false)
      : pool_(pool),
        head_(head),
        ps_dir_(ps_dir),
        use_ps_dir_(use_ps_dir),
        compressed_(compressed) {}

  PageId head() const { return head_; }
  PageId ps_dir() const { return ps_dir_; }
  bool empty() const { return head_ == kInvalidPageId; }

  /// Reads the entire chain in order.
  Result<std::vector<StabEntry>> ReadAll() const;

  /// Rewrites the chain to hold exactly `entries` (must be StabEntryLess-
  /// sorted), recycling / allocating / freeing pages and rebuilding the
  /// ps-directory (dropped when the chain fits one page).
  Status WriteAll(const std::vector<StabEntry>& entries);

  /// Inserts one entry (sorted position).
  Status Insert(const StabEntry& entry);

  /// Removes the entry with this (key, s); NotFound if absent.
  Status Erase(Position key, Position s);

  /// Reads PSL(key) — the run of entries with this key — using the
  /// directory when present. Returns an empty vector when the PSL is empty.
  Result<std::vector<StabEntry>> ReadPsl(Position key) const;

  /// SearchStabList (Algorithm 5) inner loop for one PSL: appends the
  /// prefix of PSL(key) strictly stabbed by `sd` (s < sd < e) to `out`,
  /// stopping at the first non-stabbed entry. Entries with s <= min_start
  /// are skipped without being counted — the PSL run is sorted by s, so a
  /// caller holding them on its stack (the §5.2 variation) can land past
  /// them with an in-page binary search. `entries_scanned` counts every
  /// entry examined.
  Status CollectStabbed(Position key, Position sd, Position min_start,
                        std::vector<StabEntry>* out,
                        uint64_t* entries_scanned) const;

  /// Number of pages in the chain (excluding the directory page).
  Result<uint32_t> CountPages() const;

  /// Frees every page of the chain and the directory.
  Status Clear();

 private:
  /// Stab page that starts the run for `key` (via directory or head).
  Result<PageId> LocatePslPage(Position key) const;
  Status FreeChainFrom(PageId first);

  BufferPool* pool_;
  PageId head_;
  PageId ps_dir_;
  bool use_ps_dir_;
  bool compressed_;
};

}  // namespace xrtree

#endif  // XRTREE_XRTREE_STAB_LIST_H_
