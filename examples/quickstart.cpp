// Quickstart: parse an XML document, region-encode it, build XR-trees on
// two element sets and run the XR-stack structural join — the end-to-end
// pipeline of the paper in ~80 lines.
//
//   $ ./quickstart

#include <cstdio>

#include "join/xr_stack.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "xml/corpus.h"
#include "xml/parser.h"
#include "xrtree/xrtree.h"

int main() {
  using namespace xrtree;

  // 1. An XML document (the shape of the paper's Fig. 1: a department of
  //    employees who manage other employees).
  const char* text = R"(
    <dept>
      <emp><name/>
        <emp><emp/></emp>
      </emp>
      <emp>
        <emp><emp/></emp>
        <emp><name/>
          <emp><emp/><emp/></emp>
        </emp>
        <name/>
      </emp>
      <emp><name/><emp/></emp>
      <office/>
    </dept>)";

  auto parsed = XmlParser::Parse(text);
  XR_CHECK_OK(parsed.status());

  // 2. Region-encode (depth-first (start, end) numbering, §2.1) via a
  //    corpus, which also assigns document base offsets.
  Corpus corpus;
  corpus.AddDocument(std::move(parsed).value());

  ElementList emps = corpus.ElementsWithTag("emp");
  ElementList names = corpus.ElementsWithTag("name");
  std::printf("document has %llu elements: %zu <emp>, %zu <name>\n",
              (unsigned long long)corpus.TotalElements(), emps.size(),
              names.size());

  // 3. A tiny on-disk database: disk manager + buffer pool.
  DiskManager disk;
  XR_CHECK_OK(disk.Open("/tmp/xrtree_quickstart.db"));
  BufferPool pool(&disk, 128);

  // 4. Build XR-trees over both element sets.
  XrTree emp_index(&pool);
  XrTree name_index(&pool);
  XR_CHECK_OK(emp_index.BulkLoad(emps));
  XR_CHECK_OK(name_index.BulkLoad(names));

  // 5. The two query primitives (§5.1).
  Element first_name = names.front();
  auto ancestors = emp_index.FindAncestors(first_name.start);
  XR_CHECK_OK(ancestors.status());
  std::printf("\nFindAncestors(name at %u): %zu enclosing employees\n",
              first_name.start, ancestors->size());
  for (const Element& a : *ancestors) {
    std::printf("  emp %s\n", a.ToString().c_str());
  }

  auto descendants = emp_index.FindDescendants(emps.front());
  XR_CHECK_OK(descendants.status());
  std::printf("FindDescendants(emp %s): %zu nested employees\n",
              emps.front().ToString().c_str(), descendants->size());

  // 6. The structural join "emp//name" with XR-stack (Algorithm 6).
  auto join = XrStackJoin(emp_index, name_index);
  XR_CHECK_OK(join.status());
  std::printf("\nemp//name produced %llu pairs (scanned %llu elements):\n",
              (unsigned long long)join->stats.output_pairs,
              (unsigned long long)join->stats.elements_scanned);
  for (const JoinPair& p : join->pairs) {
    std::printf("  emp %-12s contains name %s\n",
                p.ancestor.ToString().c_str(),
                p.descendant.ToString().c_str());
  }

  std::remove("/tmp/xrtree_quickstart.db");
  return 0;
}
