#include "storage/catalog.h"

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>

#include "join/element_source.h"
#include "join/xr_stack.h"
#include "tests/test_util.h"

namespace xrtree {
namespace {

TEST(CatalogTest, FreshDatabaseLoadsEmpty) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(CatalogTest, PutGetRemove) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  CatalogEntry e;
  e.name = "employee";
  e.element_count = 42;
  e.file_head = 7;
  e.btree_root = 9;
  e.xrtree_root = 11;
  ASSERT_OK(catalog.Put(e));
  ASSERT_OK_AND_ASSIGN(CatalogEntry got, catalog.Get("employee"));
  EXPECT_EQ(got.element_count, 42u);
  EXPECT_EQ(got.btree_root, 9u);
  EXPECT_TRUE(catalog.Get("name").status().IsNotFound());
  // Replacement.
  e.element_count = 43;
  ASSERT_OK(catalog.Put(e));
  EXPECT_EQ(catalog.size(), 1u);
  ASSERT_OK_AND_ASSIGN(got, catalog.Get("employee"));
  EXPECT_EQ(got.element_count, 43u);
  ASSERT_OK(catalog.Remove("employee"));
  EXPECT_TRUE(catalog.Remove("employee").IsNotFound());
}

TEST(CatalogTest, RejectsBadNames) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  CatalogEntry e;
  e.name = "";
  EXPECT_TRUE(catalog.Put(e).IsInvalidArgument());
  e.name = std::string(Catalog::kMaxNameLen + 1, 'x');
  EXPECT_TRUE(catalog.Put(e).IsInvalidArgument());
  e.name = std::string(Catalog::kMaxNameLen, 'x');
  EXPECT_OK(catalog.Put(e));
}

TEST(CatalogTest, FillsToCapacity) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  for (size_t i = 0; i < Catalog::kMaxEntries; ++i) {
    CatalogEntry e;
    e.name = "set" + std::to_string(i);
    ASSERT_OK(catalog.Put(e));
  }
  CatalogEntry overflow;
  overflow.name = "one-too-many";
  EXPECT_TRUE(catalog.Put(overflow).IsInvalidArgument());
  ASSERT_OK(catalog.Save());
  Catalog reloaded(db.pool());
  ASSERT_OK(reloaded.Load());
  EXPECT_EQ(reloaded.size(), Catalog::kMaxEntries);
}

TEST(CatalogTest, PersistsAcrossReopen) {
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "paper";
    e.element_count = 1000;
    e.xrtree_root = 33;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
  }
  db.Reopen();
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(CatalogEntry got, catalog.Get("paper"));
  EXPECT_EQ(got.element_count, 1000u);
  EXPECT_EQ(got.xrtree_root, 33u);
}

TEST(CatalogTest, RejectsCorruptHeader) {
  TempDb db;
  {
    ASSERT_OK_AND_ASSIGN(Page * raw, db.pool()->FetchPage(0));
    PageGuard page(db.pool(), raw);
    page.MarkDirty();
    raw->data()[0] = 'Z';  // garbage magic, nonzero
    raw->data()[8] = 1;    // nonzero count
  }
  Catalog catalog(db.pool());
  EXPECT_TRUE(catalog.Load().IsCorruption());
}

namespace {

/// Overwrites the leading header words of page 0 through the pool so the
/// page still carries a valid integrity trailer — the corruption under
/// test is semantic, not a checksum failure.
void ForgeCatalogHeader(BufferPool* pool, uint32_t magic, uint32_t version,
                        uint32_t count) {
  auto fetched = pool->FetchPage(0);
  ASSERT_OK(fetched.status());
  PageGuard page(pool, fetched.value());
  page.MarkDirty();
  uint32_t words[3] = {magic, version, count};
  std::memcpy(fetched.value()->data(), words, sizeof(words));
}

constexpr uint32_t kForgedMagic = 0x58524354;  // "XRCT"

}  // namespace

TEST(CatalogTest, RejectsUnknownVersion) {
  TempDb db;
  ForgeCatalogHeader(db.pool(), kForgedMagic, /*version=*/99, /*count=*/0);
  Catalog catalog(db.pool());
  Status load = catalog.Load();
  EXPECT_TRUE(load.IsNotSupported()) << load.ToString();
}

TEST(CatalogTest, RejectsEntryCountOutOfRange) {
  TempDb db;
  ForgeCatalogHeader(db.pool(), kForgedMagic, /*version=*/2,
                     /*count=*/Catalog::kMaxEntries + 1);
  Catalog catalog(db.pool());
  Status load = catalog.Load();
  EXPECT_TRUE(load.IsCorruption()) << load.ToString();
}

TEST(CatalogTest, TruncatedFirstSlotRecoversAsEmpty) {
  // Chopping the file mid-slot-0 before any other slot exists leaves a
  // torn slot + an empty slot — exactly what a crash during the very
  // first save produces. The catalog must recover to the last committed
  // state (the empty database), not refuse to open.
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "survivor";
    e.element_count = 5;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
  }
  ASSERT_EQ(::truncate(db.path().c_str(), kPageSize / 2), 0);
  DiskManager fresh;
  ASSERT_OK(fresh.Open(db.path()));
  BufferPool pool(&fresh, 8);
  Catalog catalog(&pool);
  ASSERT_OK(catalog.Load());
  EXPECT_EQ(catalog.size(), 0u);
  ASSERT_OK(fresh.Close());
}

TEST(CatalogTest, TruncatedSecondSlotFallsBackToFirst) {
  // With both slots written, mutilating the newer one must fall back to
  // the older image — the previous durable catalog — not error out and
  // not come back empty.
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "first";
    e.element_count = 1;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());  // seq 1 -> slot 0
    e.name = "second";
    e.element_count = 2;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());  // seq 2 -> slot 1
    ASSERT_OK(db.pool()->FlushAll());
    ASSERT_OK(db.disk()->Sync());
  }
  // Chop the file mid-slot-1: slot 0 stays intact.
  ASSERT_EQ(::truncate(db.path().c_str(), kPageSize + kPageSize / 2), 0);
  DiskManager fresh;
  ASSERT_OK(fresh.Open(db.path()));
  BufferPool pool(&fresh, 8);
  Catalog catalog(&pool);
  ASSERT_OK(catalog.Load());
  EXPECT_EQ(catalog.sequence(), 1u);
  EXPECT_EQ(catalog.size(), 1u);
  EXPECT_OK(catalog.Get("first").status());
  EXPECT_TRUE(catalog.Get("second").status().IsNotFound());
  ASSERT_OK(fresh.Close());
}

TEST(CatalogTest, BothSlotsCorruptIsAnError) {
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "x";
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(catalog.Save());  // both slots now hold images
  }
  db.Reopen();
  int fd = ::open(db.path().c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  for (PageId slot = 0; slot < 2; ++slot) {
    char byte;
    off_t off = static_cast<off_t>(slot) * kPageSize + 100;
    ASSERT_EQ(::pread(fd, &byte, 1, off), 1);
    byte ^= 0x01;
    ASSERT_EQ(::pwrite(fd, &byte, 1, off), 1);
  }
  ::close(fd);
  db.Reopen();
  Catalog catalog(db.pool());
  Status load = catalog.Load();
  EXPECT_TRUE(load.IsCorruption()) << load.ToString();
}

TEST(CatalogTest, SaveAlternatesSlotsWithRisingSequence) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  ASSERT_OK(catalog.Save());
  EXPECT_EQ(catalog.sequence(), 1u);
  EXPECT_EQ(catalog.active_slot(), 0u);
  ASSERT_OK(catalog.Save());
  EXPECT_EQ(catalog.sequence(), 2u);
  EXPECT_EQ(catalog.active_slot(), 1u);
  ASSERT_OK(catalog.Save());
  EXPECT_EQ(catalog.sequence(), 3u);
  EXPECT_EQ(catalog.active_slot(), 0u);
}

TEST(CatalogTest, SaveBeforeLoadIsRejected) {
  TempDb db;
  Catalog catalog(db.pool());
  Status st = catalog.Save();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(CatalogTest, FreeListPersistsAcrossReopen) {
  TempDb db;
  PageId freed = kInvalidPageId;
  PageId high_water = kInvalidPageId;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    // Allocate three data pages, free the middle one.
    PageId ids[3];
    for (PageId& id : ids) {
      ASSERT_OK_AND_ASSIGN(Page * page, db.pool()->NewPage());
      id = page->page_id();
      PageGuard guard(db.pool(), page);
      guard.MarkDirty();
    }
    freed = ids[1];
    high_water = ids[2];
    ASSERT_OK(db.pool()->FreePage(freed));
    ASSERT_OK(catalog.Save());
  }
  db.Reopen();
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  // The freed page must be recycled before the file grows — without the
  // persisted free list it would leak and the next page would come from
  // past the high-water mark.
  ASSERT_OK_AND_ASSIGN(Page * reused, db.pool()->NewPage());
  EXPECT_EQ(reused->page_id(), freed);
  ASSERT_OK(db.pool()->UnpinPage(reused->page_id(), false));
  ASSERT_OK_AND_ASSIGN(Page * next, db.pool()->NewPage());
  EXPECT_GT(next->page_id(), high_water);
  ASSERT_OK(db.pool()->UnpinPage(next->page_id(), false));
}

TEST(CatalogTest, RoundTripsThroughFreshDiskManager) {
  // Unlike PersistsAcrossReopen (which reuses the TempDb stack), this goes
  // through a wholly separate DiskManager + BufferPool, as a second
  // process opening the database would.
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "icde2003";
    e.element_count = 77;
    e.file_head = 3;
    e.btree_root = 5;
    e.xrtree_root = 8;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
    ASSERT_OK(db.disk()->Sync());
  }
  DiskManager fresh;
  ASSERT_OK(fresh.Open(db.path()));
  BufferPool pool(&fresh, 8);
  Catalog catalog(&pool);
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(CatalogEntry got, catalog.Get("icde2003"));
  EXPECT_EQ(got.element_count, 77u);
  EXPECT_EQ(got.file_head, 3u);
  EXPECT_EQ(got.btree_root, 5u);
  EXPECT_EQ(got.xrtree_root, 8u);
  ASSERT_OK(fresh.Close());
}

TEST(CatalogTest, EndToEndStoredSetRoundTrip) {
  // Build + register two element sets, "restart", reopen via the catalog
  // and re-run the join with identical results.
  TempDb db(512);
  ElementList universe = RandomNestedElements(3, 800);
  ElementList a_list, d_list;
  for (const Element& e : universe) {
    (e.level % 2 == 0 ? a_list : d_list).push_back(e);
  }
  uint64_t expected_pairs;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    StoredElementSet a_set(db.pool(), "A");
    StoredElementSet d_set(db.pool(), "D");
    ASSERT_OK(a_set.Build(a_list));
    ASSERT_OK(d_set.Build(d_list));
    ASSERT_OK(a_set.Register(&catalog));
    ASSERT_OK(d_set.Register(&catalog));
    ASSERT_OK(catalog.Save());
    ASSERT_OK_AND_ASSIGN(JoinOutput out,
                         XrStackJoin(a_set.xrtree(), d_set.xrtree()));
    expected_pairs = out.stats.output_pairs;
    ASSERT_OK(db.pool()->FlushAll());
  }
  db.Reopen();
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(StoredElementSet a_set,
                       StoredElementSet::Open(db.pool(), catalog, "A"));
  ASSERT_OK_AND_ASSIGN(StoredElementSet d_set,
                       StoredElementSet::Open(db.pool(), catalog, "D"));
  EXPECT_EQ(a_set.size(), a_list.size());
  ASSERT_OK(a_set.xrtree().CheckConsistency());
  ASSERT_OK_AND_ASSIGN(JoinOutput out,
                       XrStackJoin(a_set.xrtree(), d_set.xrtree()));
  EXPECT_EQ(out.stats.output_pairs, expected_pairs);
}

}  // namespace
}  // namespace xrtree
