#include "storage/async_disk.h"

#include <string>

namespace xrtree {

AsyncDisk::AsyncDisk(DiskInterface* base, const AsyncDiskOptions& options)
    : base_(base), options_(options) {}

AsyncDisk::~AsyncDisk() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Workers drain the queue before exiting (the wait predicate admits them
  // while ops remain), so every accepted submission completes.
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

Status AsyncDisk::Submit(PageReadRequest* requests, size_t n,
                         std::function<void()> completion) {
  if (requests == nullptr || n == 0) {
    return Status::InvalidArgument("AsyncDisk::Submit: empty submission");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return Status::InvalidArgument("AsyncDisk::Submit after shutdown");
    }
    if (queue_.size() >= options_.queue_depth) {
      rejections_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "async submission queue full (depth " +
          std::to_string(options_.queue_depth) + ")");
    }
    if (workers_.empty()) {
      size_t n_workers = options_.workers > 0 ? options_.workers : 1;
      workers_.reserve(n_workers);
      for (size_t i = 0; i < n_workers; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
      }
    }
    Op op;
    op.requests = requests;
    op.n = n;
    op.completion = std::move(completion);
    queue_.push_back(std::move(op));
    submissions_.fetch_add(1, std::memory_order_relaxed);
  }
  cv_.notify_one();
  return Status::Ok();
}

void AsyncDisk::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop requested and fully drained
    Op op = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    // The device call and the caller's completion run with no AsyncDisk
    // lock held: completions take shard latches and entry mutexes, and a
    // slow device read must not serialize the other workers.
    base_->ReadBatch(op.requests, op.n);
    if (op.completion) op.completion();
    op.completion = nullptr;  // destroy closure state outside mu_
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) drain_cv_.notify_all();
  }
}

void AsyncDisk::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [&] { return queue_.empty() && active_ == 0; });
}

size_t AsyncDisk::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_;
}

}  // namespace xrtree
