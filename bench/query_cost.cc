// Validates the §5 query-cost analysis:
//   Theorem 3 — FindDescendants in O(log_F N + R/B) I/Os,
//   Theorem 4 — FindAncestors  in O(log_F N + R)   I/Os,
// by measuring buffer-pool misses per query over cold pools while varying N
// and the output size R.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/random.h"
#include "xrtree/xrtree.h"

namespace xrtree {
namespace bench {
namespace {

/// Runs `fn` against a freshly-drained pool and returns the page misses it
/// incurred.
template <typename Fn>
uint64_t ColdMisses(BenchDb& db, Fn&& fn) {
  XR_CHECK_OK(db.pool()->FlushAll());
  // Evict everything by cycling the pool through scratch pages.
  for (size_t i = 0; i < db.pool()->pool_size(); ++i) {
    Page* p = db.pool()->NewPage().value();
    XR_CHECK_OK(db.pool()->UnpinPage(p->page_id(), false));
  }
  db.pool()->ResetStats();
  fn();
  return db.pool()->stats().buffer_misses;
}

void DescendantCostSweep(const Dataset& ds) {
  BenchEnv env = GetBenchEnv();
  PrintHeader("Theorem 3: FindDescendants I/O vs output size R");
  std::printf("%10s %10s %12s %14s %14s\n", "N", "R", "misses",
              "R/B (pages)", "misses-R/B");
  BenchDb db(env.buffer_pages);
  XrTree tree(db.pool());
  XR_CHECK_OK(tree.BulkLoad(ds.ancestors));
  const double entries_per_page = static_cast<double>(tree.leaf_capacity());

  // Pick ancestors with a spread of region sizes.
  ElementList sorted_by_span = ds.ancestors;
  std::sort(sorted_by_span.begin(), sorted_by_span.end(),
            [](const Element& a, const Element& b) {
              return (a.end - a.start) < (b.end - b.start);
            });
  for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
    size_t idx = std::min(sorted_by_span.size() - 1,
                          static_cast<size_t>(q * sorted_by_span.size()));
    Element a = sorted_by_span[idx];
    uint64_t r = 0;
    uint64_t misses = ColdMisses(db, [&] {
      r = tree.FindDescendants(a).value().size();
    });
    double rb = static_cast<double>(r) / entries_per_page;
    std::printf("%10zu %10llu %12llu %14.1f %14.1f\n", ds.ancestors.size(),
                (unsigned long long)r, (unsigned long long)misses, rb,
                misses - rb);
  }
  std::printf("expected: misses ~ log_F N + R/B (the last column stays "
              "flat and small)\n");
}

void AncestorCostSweep(const Dataset& ds) {
  BenchEnv env = GetBenchEnv();
  PrintHeader("Theorem 4: FindAncestors I/O vs result depth R");
  std::printf("%10s %8s %12s\n", "N", "R", "misses");
  BenchDb db(env.buffer_pages);
  XrTree tree(db.pool());
  XR_CHECK_OK(tree.BulkLoad(ds.ancestors));

  // Group query points by ancestor count and report average misses.
  Random rng(7);
  std::vector<std::pair<uint64_t, uint64_t>> by_r(64, {0, 0});  // sum, count
  for (int q = 0; q < 300; ++q) {
    Position sd =
        ds.ancestors[rng.Uniform(ds.ancestors.size())].start + 1;
    uint64_t r = 0;
    uint64_t misses = ColdMisses(db, [&] {
      r = tree.FindAncestors(sd).value().size();
    });
    if (r < by_r.size()) {
      by_r[r].first += misses;
      by_r[r].second += 1;
    }
  }
  for (size_t r = 0; r < by_r.size(); ++r) {
    if (by_r[r].second == 0) continue;
    std::printf("%10zu %8zu %12.1f\n", ds.ancestors.size(), r,
                static_cast<double>(by_r[r].first) / by_r[r].second);
  }
  std::printf("expected: misses ~ log_F N + R (worst-case optimal)\n");
}

void HeightSweep() {
  PrintHeader("log_F N term: misses of an empty-result probe vs N");
  std::printf("%10s %10s %12s\n", "N", "height", "misses");
  BenchEnv env = GetBenchEnv();
  const Dataset& ds = DepartmentDataset();
  for (uint64_t n = 2000; n <= ds.ancestors.size(); n *= 4) {
    ElementList elems(ds.ancestors.begin(), ds.ancestors.begin() + n);
    BenchDb db(env.buffer_pages);
    XrTreeOptions options;
    options.leaf_capacity = 32;  // force extra height at bench scale
    options.internal_capacity = 32;
    XrTree tree(db.pool(), kInvalidPageId, options);
    XR_CHECK_OK(tree.BulkLoad(elems));
    uint64_t misses = ColdMisses(db, [&] {
      tree.FindAncestors(elems.back().end + 5).value();
    });
    std::printf("%10llu %10u %12llu\n", (unsigned long long)n,
                tree.Height().value(), (unsigned long long)misses);
  }
}

}  // namespace
}  // namespace bench
}  // namespace xrtree

int main() {
  using namespace xrtree::bench;
  DescendantCostSweep(DepartmentDataset());
  AncestorCostSweep(DepartmentDataset());
  HeightSweep();
  return 0;
}
