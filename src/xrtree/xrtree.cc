#include "xrtree/xrtree.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "storage/element_file.h"
#include "xrtree/page_codec.h"
#include "xrtree/xrtree_iterator.h"

namespace xrtree {

namespace {

/// First leaf slot whose start >= key.
uint32_t XrLeafLowerBound(const Page* page, Position key) {
  const Element* slots = XrLeafSlots(page);
  uint32_t lo = 0, hi = XrHeader(page)->count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (slots[mid].start < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

/// Child slot for descending toward `key`: first slot with keys[slot] > key
/// (keys >= k live under k's right child, matching the stab convention that
/// separator k satisfies left starts < k <= right starts).
uint32_t XrChildSlot(const Page* page, Position key) {
  const XrInternalEntry* slots = XrInternalSlots(page);
  uint32_t lo = 0, hi = XrHeader(page)->count;
  while (lo < hi) {
    uint32_t mid = (lo + hi) / 2;
    if (slots[mid].key <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

PageId XrChildAt(const Page* page, uint32_t child_slot) {
  return child_slot == 0 ? XrHeader(page)->leftmost
                         : XrInternalSlots(page)[child_slot - 1].child;
}

/// Smallest key of `page` that stabs [s, e] (i.e. the smallest key >= s,
/// when it is <= e). Returns true and the key slot on success. This is the
/// primary-stab test of Definition 2 applied to one node.
bool SmallestStabbingKey(const Page* page, Position s, Position e,
                         uint32_t* slot_out) {
  const XrInternalEntry* slots = XrInternalSlots(page);
  uint32_t n = XrHeader(page)->count;
  uint32_t lo = 0, hi = n;
  while (lo < hi) {  // first key >= s
    uint32_t mid = (lo + hi) / 2;
    if (slots[mid].key < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n && slots[lo].key <= e) {
    *slot_out = lo;
    return true;
  }
  return false;
}

bool ValidXrMagic(const Page* page) {
  uint32_t magic = XrHeader(page)->magic;
  return magic == kXrLeafMagic || magic == kXrInternalMagic;
}

}  // namespace

XrTree::XrTree(BufferPool* pool, PageId root, const XrTreeOptions& options)
    : pool_(pool), root_(root) {
  leaf_cap_ = options.leaf_capacity == 0
                  ? static_cast<uint32_t>(kXrLeafMaxEntries)
                  : std::min<uint32_t>(options.leaf_capacity,
                                       kXrLeafMaxEntries);
  internal_cap_ = options.internal_capacity == 0
                      ? static_cast<uint32_t>(kXrInternalMaxEntries)
                      : std::min<uint32_t>(options.internal_capacity,
                                           kXrInternalMaxEntries);
  naive_split_key_ = options.naive_split_key;
  use_ps_dir_ = !options.disable_ps_directory;
  compressed_ = options.compressed_pages;
  assert(leaf_cap_ >= 2 && internal_cap_ >= 2);
}

Status XrTree::InitRootLeaf() {
  XR_ASSIGN_OR_RETURN(Page * raw, pool_->NewPage());
  PageGuard page(pool_, raw);
  page.MarkDirty();
  // W-latch before formatting: the id may be recycled, and a stale reader
  // still holding it from an old snapshot must block rather than observe a
  // half-formatted node.
  raw->WLatch();
  auto* hdr = XrHeader(raw);
  hdr->magic = kXrLeafMagic;
  hdr->is_leaf = 1;
  hdr->count = 0;
  hdr->next = kInvalidPageId;
  hdr->prev = kInvalidPageId;
  hdr->leftmost = kInvalidPageId;
  hdr->stab_head = kInvalidPageId;
  hdr->ps_dir = kInvalidPageId;
  root_.store(raw->page_id(), std::memory_order_release);
  raw->WUnlatch();
  return Status::Ok();
}

Result<ReadLatchedPage> XrTree::DescendToLeafRead(Position key) const {
  for (;;) {
    PageId root_id = root_.load(std::memory_order_acquire);
    if (root_id == kInvalidPageId) return ReadLatchedPage();
    auto fetched = pool_->FetchPage(root_id);
    if (!fetched.ok()) {
      // The root can only have moved under us (a grow/shrink recycled the
      // id); a stale id surfacing any error while the root has moved is a
      // retry, anything else is real.
      if (root_.load(std::memory_order_acquire) != root_id) continue;
      return fetched.status();
    }
    ReadLatchedPage cur(pool_, *fetched);
    // Validate after latching: a root split that completed between the load
    // and the latch grant W-held this page throughout, so either we blocked
    // and now see a non-root node (root_ changed — retry) or we raced ahead
    // of it entirely.
    if (root_.load(std::memory_order_acquire) != root_id) continue;
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      Page* raw = cur.get();
      if (!ValidXrMagic(raw)) {
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      if (XrHeader(raw)->is_leaf) return cur;
      PageId child = XrChildAt(raw, XrChildSlot(raw, key));
      // Couple: latch the child while the parent latch pins the link.
      XR_ASSIGN_OR_RETURN(Page * craw, pool_->FetchPage(child));
      ReadLatchedPage next(pool_, craw);
      cur = std::move(next);
    }
    return Status::Corruption("xrtree: descent did not reach a leaf");
  }
}

Result<std::vector<PageId>> XrTree::LeafRunAfter(Position key, size_t max_run,
                                                 Position* resume_key,
                                                 Position hi) const {
  std::vector<PageId> run;
  if (max_run == 0) return run;
  for (;;) {
    run.clear();
    PageId root_id = root_.load(std::memory_order_acquire);
    if (root_id == kInvalidPageId) return run;
    auto fetched = pool_->FetchPage(root_id);
    if (!fetched.ok()) {
      if (root_.load(std::memory_order_acquire) != root_id) continue;
      return fetched.status();
    }
    ReadLatchedPage cur(pool_, *fetched);
    if (root_.load(std::memory_order_acquire) != root_id) continue;
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      Page* raw = cur.get();
      const auto* hdr = XrHeader(raw);
      if (!ValidXrMagic(raw)) {
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      if (hdr->is_leaf) return run;
      uint32_t slot = XrChildSlot(raw, key);
      // Record the children after the taken slot at every level; when the
      // descent bottoms out, the last recording is the leaf's sibling run.
      // (An internal node with `count` keys has `count + 1` children, at
      // child slots 0..count. The child at slot i >= 1 begins at the
      // separator slots[i-1].key, which is the resume key when that child
      // is the last one recorded.) A child whose separator is at or past
      // `hi` starts outside the caller's range and is never visited — stop
      // the run there rather than prefetch dead pages.
      run.clear();
      uint32_t last = 0;
      const XrInternalEntry* slots = XrInternalSlots(raw);
      for (uint32_t next = slot + 1;
           next <= hdr->count && run.size() < max_run; ++next) {
        if (hi != kNilPosition && slots[next - 1].key >= hi) break;
        run.push_back(XrChildAt(raw, next));
        last = next;
      }
      if (resume_key != nullptr && !run.empty()) {
        *resume_key = slots[last - 1].key;
      }
      PageId child = XrChildAt(raw, slot);
      XR_ASSIGN_OR_RETURN(Page * craw, pool_->FetchPage(child));
      ReadLatchedPage next_page(pool_, craw);
      cur = std::move(next_page);
    }
    return Status::Corruption("xrtree: descent did not reach a leaf");
  }
}

Result<std::vector<StabEntry>> XrTree::ReadNodeStab(const Page* node) const {
  const auto* hdr = XrHeader(node);
  StabList list(pool_, hdr->stab_head, hdr->ps_dir, use_ps_dir_, compressed_);
  return list.ReadAll();
}

Status XrTree::WriteNodeStab(Page* node, std::vector<StabEntry> entries) {
  std::sort(entries.begin(), entries.end(), StabEntryLess);
  auto* hdr = XrHeader(node);
  StabList list(pool_, hdr->stab_head, hdr->ps_dir, use_ps_dir_, compressed_);
  XR_RETURN_IF_ERROR(list.WriteAll(entries));
  hdr->stab_head = list.head();
  hdr->ps_dir = list.ps_dir();

  // Refresh every key's (ps, pe) summary: the region of the first element
  // of its PSL (Definition 3), or nil when the PSL is empty.
  XrInternalEntry* slots = XrInternalSlots(node);
  size_t ei = 0;
  for (uint32_t i = 0; i < hdr->count; ++i) {
    while (ei < entries.size() && entries[ei].key < slots[i].key) ++ei;
    if (ei < entries.size() && entries[ei].key == slots[i].key) {
      slots[i].ps = entries[ei].s;
      slots[i].pe = entries[ei].e;
    } else {
      slots[i].ps = kNilPosition;
      slots[i].pe = kNilPosition;
    }
  }
  return Status::Ok();
}

Status XrTree::InsertStabIntoNode(Page* node, const StabEntry& entry) {
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, ReadNodeStab(node));
  entries.push_back(entry);
  return WriteNodeStab(node, std::move(entries));
}

// ---------------------------------------------------------------------------
// Insertion (Algorithm 1)
// ---------------------------------------------------------------------------

Status XrTree::Insert(const Element& element) {
  if (!(element.start < element.end)) {
    return Status::InvalidArgument("element start must precede end");
  }
  std::shared_lock<std::shared_mutex> commit_barrier(pool_->commit_mutex());
  bool needs_exclusive = false;
  {
    // Inserts share the writer gate with each other (they crab); only
    // Delete and the decompress-on-write retry below take it exclusively.
    std::shared_lock<std::shared_mutex> gate(writer_gate_);
    if (root_.load(std::memory_order_acquire) == kInvalidPageId) {
      std::lock_guard<std::mutex> init(root_init_mu_);
      if (root_.load(std::memory_order_acquire) == kInvalidPageId) {
        XR_RETURN_IF_ERROR(InitRootLeaf());
      }
    }
    Status st = InsertFast(element, &needs_exclusive);
    if (!needs_exclusive) return st;
  }
  // The descent landed on a compressed leaf (bulk load / compaction
  // output). Mutating it means rewriting the whole page, possibly several
  // times over (binary splits until the entries fit the fixed layout) —
  // run that under the exclusive gate so no sibling writer crabs through
  // the half-converted region. Readers are unaffected: every intermediate
  // state is a consistent tree. (DESIGN.md §15.)
  std::unique_lock<std::shared_mutex> gate(writer_gate_);
  return InsertExclusive(element);
}

Status XrTree::InsertFast(const Element& element, bool* needs_exclusive) {
  WriteLatchSet ls(pool_);
  std::vector<PathEntry> path;
  bool placed = false;
  PageId placed_page = kInvalidPageId;
  Position placed_key = 0;
  Page* lraw = nullptr;

  // I1: crab down; on the way, insert the element into the stab list of the
  // highest (topmost) internal node with a stabbing key. That node stays
  // W-latched to the end of the operation even when the crab would drop it:
  // the duplicate-rollback path must still reach it, and holding it pins
  // the element's topmost-node invariant against concurrent promotions.
  // A concurrent split can only promote a key into an ancestor we released
  // while holding that ancestor's W-latch itself (a full child is unsafe,
  // so its parent was retained by the splitter), and our coupled descent
  // serializes against it — we see the key either above or below, never
  // neither.
  for (;;) {
    PageId root_id = root_.load(std::memory_order_acquire);
    auto fetched = ls.Acquire(root_id);
    if (!fetched.ok()) {
      ls.ReleaseAll();
      if (root_.load(std::memory_order_acquire) != root_id) continue;
      return fetched.status();
    }
    if (root_.load(std::memory_order_acquire) != root_id) {
      // Lost a race with a root split; the stale root now covers only a
      // slice of the key space. Nothing was placed yet — restart clean.
      ls.ReleaseAll();
      continue;
    }
    Page* node = *fetched;
    bool at_leaf = false;
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      if (!ValidXrMagic(node)) {
        ls.ReleaseAll();
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      const auto* chk = XrHeader(node);
      if (chk->is_leaf) {
        if (XrLeafIsCompressed(node)) {
          // Mutating a compressed leaf requires the exclusive gate. Undo
          // the speculative stab placement (the element is not in the tree
          // yet), release everything, and hand over to InsertExclusive.
          if (placed) {
            XR_RETURN_IF_ERROR(
                RollbackStabPlacement(ls, placed_page, placed_key, element));
          }
          ls.ReleaseAll();
          *needs_exclusive = true;
          return Status::Ok();
        }
        path.push_back({node->page_id(), 0});
        lraw = node;
        at_leaf = true;
        break;
      }
      if (!placed) {
        uint32_t stab_slot;
        if (SmallestStabbingKey(node, element.start, element.end,
                                &stab_slot)) {
          Position key = XrInternalSlots(node)[stab_slot].key;
          XR_RETURN_IF_ERROR(
              InsertStabIntoNode(node, MakeStabEntry(element, key)));
          ls.MarkDirty(node->page_id());
          placed = true;
          placed_page = node->page_id();
          placed_key = key;
        }
      }
      uint32_t slot = XrChildSlot(node, element.start);
      path.push_back({node->page_id(), slot});
      PageId child_id = XrChildAt(node, slot);
      auto child = ls.Acquire(child_id);
      if (!child.ok()) {
        ls.ReleaseAll();
        return child.status();
      }
      const auto* chdr = XrHeader(*child);
      uint32_t cap = chdr->is_leaf ? leaf_cap_ : internal_cap_;
      if (chdr->count < cap) {
        // Safe child: a split below cannot propagate past it — drop the
        // ancestors, but never the stab-placement node.
        if (placed) {
          ls.ReleaseAllExcept({child_id, placed_page});
        } else {
          ls.ReleaseAllExcept({child_id});
        }
      }
      node = *child;
    }
    if (!at_leaf) {
      ls.ReleaseAll();
      return Status::Corruption("xrtree: descent did not reach a leaf");
    }
    break;
  }

  (void)lraw;
  return LeafInsert(ls, path, element, placed, placed_page, placed_key);
}

Status XrTree::RollbackStabPlacement(WriteLatchSet& ls, PageId placed_page,
                                     Position placed_key,
                                     const Element& element) {
  // Undo the speculative I1 stab placement (duplicate key, or a compressed
  // leaf forcing the exclusive retry). The placement node is still in the
  // latch set by construction.
  Page* nraw = ls.Get(placed_page);
  if (nraw == nullptr) {
    return Status::Corruption("xrtree: stab placement node was released");
  }
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, ReadNodeStab(nraw));
  auto it = std::find_if(entries.begin(), entries.end(),
                         [&](const StabEntry& se) {
                           return se.key == placed_key &&
                                  se.s == element.start &&
                                  se.e == element.end;
                         });
  if (it != entries.end()) {
    entries.erase(it);
    XR_RETURN_IF_ERROR(WriteNodeStab(nraw, std::move(entries)));
    ls.MarkDirty(placed_page);
  }
  return Status::Ok();
}

Status XrTree::LeafInsert(WriteLatchSet& ls, std::vector<PathEntry>& path,
                          const Element& element, bool placed,
                          PageId placed_page, Position placed_key) {
  // I2: insert into the (fixed-format) leaf.
  PageId leaf_id = path.back().page;
  Page* lraw = ls.Get(leaf_id);
  if (lraw == nullptr) {
    return Status::Corruption("xrtree: leaf not held for insert");
  }
  auto* hdr = XrHeader(lraw);
  Element* slots = XrLeafSlots(lraw);
  uint32_t at = XrLeafLowerBound(lraw, element.start);
  if (at < hdr->count && slots[at].start == element.start) {
    // Roll back before reporting the duplicate (the resident element keeps
    // its own entry, if any).
    if (placed) {
      XR_RETURN_IF_ERROR(
          RollbackStabPlacement(ls, placed_page, placed_key, element));
    }
    return Status::InvalidArgument("duplicate key " +
                                   std::to_string(element.start));
  }
  Element stored = element;
  SetInStabList(&stored, placed);

  if (hdr->count < leaf_cap_) {
    std::memmove(slots + at + 1, slots + at,
                 (hdr->count - at) * sizeof(Element));
    slots[at] = stored;
    ++hdr->count;
    ls.MarkDirty(leaf_id);
    size_.fetch_add(1, std::memory_order_acq_rel);
    return Status::Ok();
  }

  // I22: split the leaf.
  std::vector<Element> all(slots, slots + hdr->count);
  all.insert(all.begin() + at, stored);
  uint32_t left_n = static_cast<uint32_t>(all.size() / 2);

  // Split-key choice (§3.2): any value in (last_left.start, first_right.start]
  // separates the leaves; prefer first_right.start - 1, which avoids stabbing
  // the right leaf's first element (the paper's key-79-vs-80 example).
  Position last_left = all[left_n - 1].start;
  Position first_right = all[left_n].start;
  Position sep = (!naive_split_key_ && first_right - 1 > last_left)
                     ? first_right - 1
                     : first_right;

  // Newly stabbed elements (InStabList == no with s <= sep <= e) become the
  // StabSet' proposed to the parent; their flags turn to yes.
  std::vector<StabEntry> stab_set;
  for (Element& e : all) {
    if (!InStabList(e) && e.start <= sep && sep <= e.end) {
      SetInStabList(&e, true);
      stab_set.push_back(MakeStabEntry(e, sep));
    }
  }

  XR_ASSIGN_OR_RETURN(Page * rraw, pool_->NewPage());
  ls.AdoptNew(rraw);  // latched before any formatting
  ls.MarkDirty(rraw->page_id());
  auto* rhdr = XrHeader(rraw);
  rhdr->magic = kXrLeafMagic;
  rhdr->is_leaf = 1;
  rhdr->count = static_cast<uint32_t>(all.size()) - left_n;
  rhdr->next = hdr->next;
  rhdr->prev = leaf_id;
  rhdr->leftmost = kInvalidPageId;
  rhdr->stab_head = kInvalidPageId;
  rhdr->ps_dir = kInvalidPageId;
  std::memcpy(XrLeafSlots(rraw), all.data() + left_n,
              rhdr->count * sizeof(Element));

  hdr->count = left_n;
  std::memcpy(slots, all.data(), left_n * sizeof(Element));
  PageId old_next = rhdr->next;
  hdr->next = rraw->page_id();
  ls.MarkDirty(leaf_id);

  if (old_next != kInvalidPageId) {
    // Rightward lateral acquisition — consistent with every other lateral
    // in the protocol, so no writer-writer cycle.
    XR_ASSIGN_OR_RETURN(Page * nraw, ls.Acquire(old_next));
    XrHeader(nraw)->prev = rraw->page_id();
    ls.MarkDirty(old_next);
  }

  PageId right_id = rraw->page_id();
  path.pop_back();
  XR_RETURN_IF_ERROR(
      InsertIntoParent(ls, path, sep, right_id, std::move(stab_set)));
  size_.fetch_add(1, std::memory_order_acq_rel);
  return Status::Ok();
}

Status XrTree::InsertExclusive(const Element& element) {
  // Exclusive-gate insert: no other writer is active, so the descent can
  // hold the full path W-latched (like Delete) without deadlock risk.
  // Each round either converts the target leaf to the fixed layout (then
  // inserts) or performs one binary split of an over-full compressed leaf
  // and re-descends; the tree is consistent between rounds. A compressed
  // leaf holds at most kXrcMaxPageEntries entries, so the number of split
  // rounds is logarithmic and tiny — the bound below is pure paranoia.
  for (int round = 0; round < 40; ++round) {
    WriteLatchSet ls(pool_);
    std::vector<PathEntry> path;
    Page* lraw = nullptr;
    PageId cur = root_.load(std::memory_order_acquire);
    for (int depth = 0; depth < kMaxTreeDepth && lraw == nullptr; ++depth) {
      XR_ASSIGN_OR_RETURN(Page * raw, ls.Acquire(cur));
      if (!ValidXrMagic(raw)) {
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      if (XrHeader(raw)->is_leaf) {
        path.push_back({cur, 0});
        lraw = raw;
        break;
      }
      uint32_t slot = XrChildSlot(raw, element.start);
      path.push_back({cur, slot});
      cur = XrChildAt(raw, slot);
    }
    if (lraw == nullptr) {
      return Status::Corruption("xrtree: descent did not reach a leaf");
    }
    if (XrLeafIsCompressed(lraw)) {
      XR_RETURN_IF_ERROR(DecompressLeafStep(ls, path));
      continue;  // release everything, re-descend
    }
    // The leaf is in the fixed layout. Place the stab entry at the topmost
    // stabbing node on the held path (same placement Insert's crabbing
    // descent makes speculatively), then run the shared leaf tail.
    bool placed = false;
    PageId placed_page = kInvalidPageId;
    Position placed_key = 0;
    for (const PathEntry& pe : path) {
      Page* node = ls.Get(pe.page);
      if (node == nullptr || XrHeader(node)->is_leaf) break;
      uint32_t stab_slot;
      if (SmallestStabbingKey(node, element.start, element.end, &stab_slot)) {
        placed_key = XrInternalSlots(node)[stab_slot].key;
        XR_RETURN_IF_ERROR(
            InsertStabIntoNode(node, MakeStabEntry(element, placed_key)));
        ls.MarkDirty(pe.page);
        placed = true;
        placed_page = pe.page;
        break;
      }
    }
    return LeafInsert(ls, path, element, placed, placed_page, placed_key);
  }
  return Status::Corruption("xrtree: decompress-on-write did not converge");
}

Status XrTree::DecompressLeafInPlace(WriteLatchSet& ls, PageId leaf_id) {
  Page* lraw = ls.Get(leaf_id);
  if (lraw == nullptr) {
    return Status::Corruption("xrtree: leaf not held for decompression");
  }
  auto* hdr = XrHeader(lraw);
  std::vector<Element> all;
  XR_RETURN_IF_ERROR(XrcDecodeLeaf(lraw, &all));
  if (all.size() > leaf_cap_) {
    return Status::Corruption("xrtree: compressed leaf too full to decompress");
  }
  hdr->format = kXrPageFormatFixed;
  hdr->count = static_cast<uint32_t>(all.size());
  std::memcpy(XrLeafSlots(lraw), all.data(), all.size() * sizeof(Element));
  // Zero the slack so the fixed image is deterministic for WAL/CRC.
  std::memset(reinterpret_cast<char*>(XrLeafSlots(lraw) + all.size()), 0,
              kPageDataSize - sizeof(XrPageHeader) -
                  all.size() * sizeof(Element));
  ls.MarkDirty(leaf_id);
  return Status::Ok();
}

Status XrTree::DecompressLeafStep(WriteLatchSet& ls,
                                  std::vector<PathEntry> path) {
  PageId leaf_id = path.back().page;
  path.pop_back();
  Page* lraw = ls.Get(leaf_id);
  if (lraw == nullptr) {
    return Status::Corruption("xrtree: leaf not held for decompression");
  }
  auto* hdr = XrHeader(lraw);
  std::vector<Element> all;
  XR_RETURN_IF_ERROR(XrcDecodeLeaf(lraw, &all));
  if (all.size() <= leaf_cap_) {
    return DecompressLeafInPlace(ls, leaf_id);
  }

  // Binary split: same separator policy and StabSet' computation as the
  // I22 leaf split, just over decoded entries re-encoded compressed. Both
  // halves re-encode into a page that held their superset, so they always
  // fit (see page_codec.h).
  const size_t half = all.size() / 2;
  Position last_left = all[half - 1].start;
  Position first_right = all[half].start;
  Position sep = (!naive_split_key_ && first_right - 1 > last_left)
                     ? first_right - 1
                     : first_right;
  std::vector<StabEntry> stab_set;
  for (Element& e : all) {
    if (!InStabList(e) && e.start <= sep && sep <= e.end) {
      SetInStabList(&e, true);
      stab_set.push_back(MakeStabEntry(e, sep));
    }
  }

  XR_ASSIGN_OR_RETURN(Page * rraw, pool_->NewPage());
  ls.AdoptNew(rraw);
  ls.MarkDirty(rraw->page_id());
  auto* rhdr = XrHeader(rraw);
  rhdr->magic = kXrLeafMagic;
  rhdr->is_leaf = 1;
  rhdr->count = 0;
  rhdr->next = hdr->next;
  rhdr->prev = leaf_id;
  rhdr->leftmost = kInvalidPageId;
  rhdr->stab_head = kInvalidPageId;
  rhdr->ps_dir = kInvalidPageId;
  if (XrcEncodeLeaf(rraw, all.data() + half, all.size() - half) !=
      all.size() - half) {
    return Status::Corruption("xrtree: split right half did not re-encode");
  }
  if (XrcEncodeLeaf(lraw, all.data(), half) != half) {
    return Status::Corruption("xrtree: split left half did not re-encode");
  }
  PageId old_next = rhdr->next;
  hdr->next = rraw->page_id();
  ls.MarkDirty(leaf_id);
  if (old_next != kInvalidPageId) {
    XR_ASSIGN_OR_RETURN(Page * nraw, ls.Acquire(old_next));
    XrHeader(nraw)->prev = rraw->page_id();
    ls.MarkDirty(old_next);
  }
  return InsertIntoParent(ls, path, sep, rraw->page_id(), std::move(stab_set));
}

Status XrTree::InsertIntoParent(WriteLatchSet& ls,
                                std::vector<PathEntry>& path,
                                Position sep_key, PageId right_child,
                                std::vector<StabEntry> stab_set) {
  for (StabEntry& se : stab_set) se.key = sep_key;

  if (path.empty()) {
    // I4: grow the tree with a new root holding the promoted key and its
    // StabSet'. We hold the old root's W-latch (it was unsafe the whole
    // way), which is what makes the root_ store safe against the readers'
    // validate-after-latch retry.
    PageId old_root = root_.load(std::memory_order_acquire);
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->NewPage());
    ls.AdoptNew(raw);
    ls.MarkDirty(raw->page_id());
    auto* hdr = XrHeader(raw);
    hdr->magic = kXrInternalMagic;
    hdr->is_leaf = 0;
    hdr->count = 1;
    hdr->next = kInvalidPageId;
    hdr->prev = kInvalidPageId;
    hdr->leftmost = old_root;
    hdr->stab_head = kInvalidPageId;
    hdr->ps_dir = kInvalidPageId;
    XrInternalSlots(raw)[0] = {sep_key, kNilPosition, kNilPosition,
                               right_child};
    XR_RETURN_IF_ERROR(WriteNodeStab(raw, std::move(stab_set)));
    root_.store(raw->page_id(), std::memory_order_release);
    return Status::Ok();
  }

  PathEntry entry = path.back();
  path.pop_back();
  Page* raw = ls.Get(entry.page);
  if (raw == nullptr) {
    // The crab released this ancestor because a descendant was safe, yet a
    // split reached it — the safety test was wrong. Structural bug.
    return Status::Corruption("xrtree: split propagated past the crab scope");
  }
  auto* hdr = XrHeader(raw);
  XrInternalEntry* slots = XrInternalSlots(raw);
  uint32_t at = entry.slot;

  // Gather the node's stab entries and apply the new-key effects:
  //  * elements of the successor key's PSL with s <= sep_key are now
  //    primarily stabbed by sep_key (it is smaller) — retag them;
  //  * StabSet' arrives tagged with sep_key.
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, ReadNodeStab(raw));
  if (at < hdr->count) {
    Position successor = slots[at].key;
    for (StabEntry& se : entries) {
      if (se.key == successor && se.s <= sep_key) se.key = sep_key;
    }
  }
  entries.insert(entries.end(), stab_set.begin(), stab_set.end());

  if (hdr->count < internal_cap_) {
    // I31: room available — insert the key entry and commit the stab list.
    std::memmove(slots + at + 1, slots + at,
                 (hdr->count - at) * sizeof(XrInternalEntry));
    slots[at] = {sep_key, kNilPosition, kNilPosition, right_child};
    ++hdr->count;
    XR_RETURN_IF_ERROR(WriteNodeStab(raw, std::move(entries)));
    ls.MarkDirty(entry.page);
    return Status::Ok();
  }

  // I32: split the internal node. The middle key km moves up, together
  // with StabSet'' — every element of SL(I) ∪ SL(Inew) stabbed by km
  // (Fig. 5).
  std::vector<XrInternalEntry> all(slots, slots + hdr->count);
  all.insert(all.begin() + at,
             {sep_key, kNilPosition, kNilPosition, right_child});
  uint32_t mid = static_cast<uint32_t>(all.size() / 2);
  Position km = all[mid].key;

  std::vector<StabEntry> left_entries, right_entries, stab_up;
  for (const StabEntry& se : entries) {
    if (se.s <= km && km <= se.e) {
      stab_up.push_back(se);
    } else if (se.key < km) {
      left_entries.push_back(se);
    } else {
      right_entries.push_back(se);
    }
  }

  XR_ASSIGN_OR_RETURN(Page * rraw, pool_->NewPage());
  ls.AdoptNew(rraw);
  ls.MarkDirty(rraw->page_id());
  auto* rhdr = XrHeader(rraw);
  rhdr->magic = kXrInternalMagic;
  rhdr->is_leaf = 0;
  rhdr->count = static_cast<uint32_t>(all.size()) - mid - 1;
  rhdr->next = kInvalidPageId;
  rhdr->prev = kInvalidPageId;
  rhdr->leftmost = all[mid].child;
  rhdr->stab_head = kInvalidPageId;
  rhdr->ps_dir = kInvalidPageId;
  std::memcpy(XrInternalSlots(rraw), all.data() + mid + 1,
              rhdr->count * sizeof(XrInternalEntry));

  hdr->count = mid;
  std::memcpy(slots, all.data(), mid * sizeof(XrInternalEntry));
  ls.MarkDirty(entry.page);

  XR_RETURN_IF_ERROR(WriteNodeStab(raw, std::move(left_entries)));
  XR_RETURN_IF_ERROR(WriteNodeStab(rraw, std::move(right_entries)));

  return InsertIntoParent(ls, path, km, rraw->page_id(), std::move(stab_up));
}

// ---------------------------------------------------------------------------
// Stab-list relocation primitives (shared by Algorithms 1 and 2)
// ---------------------------------------------------------------------------

Status XrTree::PlaceEntry(WriteLatchSet& ls, PageId from,
                          const StabEntry& entry) {
  // The descent may re-enter pages the caller already holds (on-path
  // children); Acquire is re-entrant for those. Pages newly latched here
  // are released as soon as the descent moves past them — coupling, not
  // accumulation — and never before their child is latched.
  PageId cur = from;
  PageId prev_owned = kInvalidPageId;
  for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
    bool pre_held = ls.Holds(cur);
    XR_ASSIGN_OR_RETURN(Page * raw, ls.Acquire(cur));
    if (prev_owned != kInvalidPageId) ls.Release(prev_owned);
    prev_owned = pre_held ? kInvalidPageId : cur;
    if (!ValidXrMagic(raw)) {
      return Status::Corruption("xrtree: sweep hit a foreign page");
    }
    if (XrHeader(raw)->is_leaf) {
      // No internal node below stabs the element: flag it InStabList=no.
      if (XrLeafIsCompressed(raw)) {
        // The flag rides bit 0 of the level varint, so this is an in-place
        // single-byte rewrite — no re-encode.
        XR_ASSIGN_OR_RETURN(bool found, XrcLeafSetFlag(raw, entry.s, false));
        if (!found) {
          return Status::Corruption("PlaceEntry: element missing from leaf");
        }
      } else {
        uint32_t at = XrLeafLowerBound(raw, entry.s);
        if (at >= XrHeader(raw)->count ||
            XrLeafSlots(raw)[at].start != entry.s) {
          return Status::Corruption("PlaceEntry: element missing from leaf");
        }
        SetInStabList(&XrLeafSlots(raw)[at], false);
      }
      ls.MarkDirty(cur);
      if (prev_owned != kInvalidPageId) ls.Release(prev_owned);
      return Status::Ok();
    }
    uint32_t stab_slot;
    if (SmallestStabbingKey(raw, entry.s, entry.e, &stab_slot)) {
      StabEntry tagged = entry;
      tagged.key = XrInternalSlots(raw)[stab_slot].key;
      XR_RETURN_IF_ERROR(InsertStabIntoNode(raw, tagged));
      ls.MarkDirty(cur);
      if (prev_owned != kInvalidPageId) ls.Release(prev_owned);
      return Status::Ok();
    }
    cur = XrChildAt(raw, XrChildSlot(raw, entry.s));
  }
  return Status::Corruption("xrtree: sweep did not reach a leaf");
}

Status XrTree::CollectStabbedDescent(WriteLatchSet& ls, PageId subtree,
                                     Position k,
                                     std::vector<StabEntry>* out) {
  PageId cur = subtree;
  PageId prev_owned = kInvalidPageId;
  for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
    bool pre_held = ls.Holds(cur);
    XR_ASSIGN_OR_RETURN(Page * raw, ls.Acquire(cur));
    if (prev_owned != kInvalidPageId) ls.Release(prev_owned);
    prev_owned = pre_held ? kInvalidPageId : cur;
    if (!ValidXrMagic(raw)) {
      return Status::Corruption("xrtree: sweep hit a foreign page");
    }
    if (XrHeader(raw)->is_leaf) {
      bool dirty = false;
      if (XrLeafIsCompressed(raw)) {
        std::vector<Element> all;
        XR_RETURN_IF_ERROR(XrcDecodeLeaf(raw, &all));
        for (Element& el : all) {
          if (el.start > k) break;
          if (!InStabList(el) && k <= el.end) {
            XR_ASSIGN_OR_RETURN(bool found,
                                XrcLeafSetFlag(raw, el.start, true));
            if (!found) {
              return Status::Corruption("xrtree: stabbed element vanished");
            }
            SetInStabList(&el, true);
            out->push_back(MakeStabEntry(el, k));
            dirty = true;
          }
        }
      } else {
        Element* slots = XrLeafSlots(raw);
        uint32_t n = XrHeader(raw)->count;
        for (uint32_t i = 0; i < n && slots[i].start <= k; ++i) {
          if (!InStabList(slots[i]) && k <= slots[i].end) {
            SetInStabList(&slots[i], true);
            out->push_back(MakeStabEntry(slots[i], k));
            dirty = true;
          }
        }
      }
      if (dirty) ls.MarkDirty(cur);
      if (prev_owned != kInvalidPageId) ls.Release(prev_owned);
      return Status::Ok();
    }
    // Remove (and collect) every stab entry of this node stabbed by k.
    XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, ReadNodeStab(raw));
    std::vector<StabEntry> kept;
    kept.reserve(entries.size());
    bool changed = false;
    for (const StabEntry& se : entries) {
      if (se.s <= k && k <= se.e) {
        out->push_back(se);
        changed = true;
      } else {
        kept.push_back(se);
      }
    }
    if (changed) {
      XR_RETURN_IF_ERROR(WriteNodeStab(raw, std::move(kept)));
      ls.MarkDirty(cur);
    }
    cur = XrChildAt(raw, XrChildSlot(raw, k));
  }
  return Status::Corruption("xrtree: sweep did not reach a leaf");
}

Status XrTree::ReplaceSeparatorKey(WriteLatchSet& ls, PageId parent,
                                   uint32_t key_slot, Position knew) {
  Page* praw = ls.Get(parent);
  if (praw == nullptr) {
    return Status::Corruption("xrtree: separator change outside crab scope");
  }
  auto* hdr = XrHeader(praw);
  XrInternalEntry* slots = XrInternalSlots(praw);
  assert(key_slot < hdr->count);
  (void)hdr;
  slots[key_slot].key = knew;
  slots[key_slot].ps = kNilPosition;
  slots[key_slot].pe = kNilPosition;
  ls.MarkDirty(parent);

  // Recompute every entry's primary key over the new key set; entries no
  // longer stabbed by any key of this node are demoted below.
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, ReadNodeStab(praw));
  std::vector<StabEntry> kept, demote;
  for (StabEntry se : entries) {
    uint32_t slot;
    if (SmallestStabbingKey(praw, se.s, se.e, &slot)) {
      se.key = slots[slot].key;
      kept.push_back(se);
    } else {
      demote.push_back(se);
    }
  }

  // Pull up elements below that the new key stabs: they live on the path
  // of knew inside the two adjacent subtrees (elements with s < knew sit
  // left of the separator, an element with s == knew sits right of it).
  std::vector<StabEntry> pulled;
  XR_RETURN_IF_ERROR(
      CollectStabbedDescent(ls, XrChildAt(praw, key_slot), knew, &pulled));
  XR_RETURN_IF_ERROR(
      CollectStabbedDescent(ls, XrChildAt(praw, key_slot + 1), knew,
                            &pulled));
  for (StabEntry se : pulled) {
    uint32_t slot;
    bool ok = SmallestStabbingKey(praw, se.s, se.e, &slot);
    if (!ok) return Status::Corruption("pulled entry not stabbed by parent");
    se.key = slots[slot].key;
    kept.push_back(se);
  }

  XR_RETURN_IF_ERROR(WriteNodeStab(praw, std::move(kept)));
  ls.MarkDirty(parent);
  for (const StabEntry& se : demote) {
    XR_RETURN_IF_ERROR(PlaceEntry(ls, parent, se));
  }
  return Status::Ok();
}

Status XrTree::RemoveSeparatorKey(WriteLatchSet& ls, PageId parent,
                                  uint32_t key_slot) {
  Page* praw = ls.Get(parent);
  if (praw == nullptr) {
    return Status::Corruption("xrtree: separator change outside crab scope");
  }
  auto* hdr = XrHeader(praw);
  XrInternalEntry* slots = XrInternalSlots(praw);
  assert(key_slot < hdr->count);
  Position removed = slots[key_slot].key;
  std::memmove(slots + key_slot, slots + key_slot + 1,
               (hdr->count - key_slot - 1) * sizeof(XrInternalEntry));
  --hdr->count;
  ls.MarkDirty(parent);

  // D31: entries of PSL(removed) are retagged to another stabbing key of
  // this node, or reinserted into the highest stabbing node below.
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, ReadNodeStab(praw));
  std::vector<StabEntry> kept, demote;
  for (StabEntry se : entries) {
    if (se.key != removed) {
      kept.push_back(se);
      continue;
    }
    uint32_t slot;
    if (SmallestStabbingKey(praw, se.s, se.e, &slot)) {
      se.key = slots[slot].key;
      kept.push_back(se);
    } else {
      demote.push_back(se);
    }
  }
  XR_RETURN_IF_ERROR(WriteNodeStab(praw, std::move(kept)));
  ls.MarkDirty(parent);
  for (const StabEntry& se : demote) {
    XR_RETURN_IF_ERROR(PlaceEntry(ls, parent, se));
  }
  return Status::Ok();
}

Status XrTree::MergeStabLists(Page* dest, Page* victim) {
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> a, ReadNodeStab(dest));
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> b, ReadNodeStab(victim));
  a.insert(a.end(), b.begin(), b.end());
  XR_RETURN_IF_ERROR(WriteNodeStab(victim, {}));
  // Note: dest's keys must already include the victim's for the (ps, pe)
  // refresh to see them; callers merge key arrays before stab lists.
  return WriteNodeStab(dest, std::move(a));
}

// ---------------------------------------------------------------------------
// Deletion (Algorithm 2)
// ---------------------------------------------------------------------------

Status XrTree::Delete(Position key) {
  std::shared_lock<std::shared_mutex> commit_barrier(pool_->commit_mutex());
  // Exclusive writer gate: the D31 reinsertion and key-replacement sweeps
  // descend into subtrees OFF the deletion path, which can deadlock against
  // a concurrent inserter's rightward lateral latches. Readers still run
  // throughout — every page mutation below happens under its W-latch.
  std::unique_lock<std::shared_mutex> gate(writer_gate_);
  PageId root_id = root_.load(std::memory_order_acquire);
  if (root_id == kInvalidPageId) return Status::NotFound("empty tree");

  WriteLatchSet ls(pool_);
  std::vector<PathEntry> path;
  Page* lraw = nullptr;
  // Full-path descent, nothing crab-released: D1 revisits ancestors (the
  // topmost stab erase) and the underflow sweeps revisit the path's
  // subtrees, so every node stays held. The gate keeps the structure (and
  // root_) stable, so no retry loop is needed — except for the
  // decompress-on-write rounds below, which re-descend after splitting an
  // over-full compressed leaf (the gate is exclusive, so this is private).
  for (int round = 0; round < 40; ++round) {
    PageId cur = root_.load(std::memory_order_acquire);
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      XR_ASSIGN_OR_RETURN(Page * raw, ls.Acquire(cur));
      if (!ValidXrMagic(raw)) {
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      if (XrHeader(raw)->is_leaf) {
        path.push_back({cur, 0});
        lraw = raw;
        break;
      }
      uint32_t slot = XrChildSlot(raw, key);
      path.push_back({cur, slot});
      cur = XrChildAt(raw, slot);
    }
    if (lraw == nullptr) {
      return Status::Corruption("xrtree: descent did not reach a leaf");
    }
    if (!XrLeafIsCompressed(lraw)) break;
    if (XrHeader(lraw)->count <= leaf_cap_) {
      XR_RETURN_IF_ERROR(DecompressLeafInPlace(ls, path.back().page));
      break;
    }
    XR_RETURN_IF_ERROR(DecompressLeafStep(ls, path));
    ls.ReleaseAll();
    path.clear();
    lraw = nullptr;
  }
  if (lraw == nullptr || XrLeafIsCompressed(lraw)) {
    return Status::Corruption("xrtree: decompress-on-write did not converge");
  }
  PageId leaf_id = path.back().page;

  Element victim;
  {
    auto* hdr = XrHeader(lraw);
    Element* slots = XrLeafSlots(lraw);
    uint32_t at = XrLeafLowerBound(lraw, key);
    if (at >= hdr->count || slots[at].start != key) {
      return Status::NotFound("key " + std::to_string(key));
    }
    victim = slots[at];
    std::memmove(slots + at, slots + at + 1,
                 (hdr->count - at - 1) * sizeof(Element));
    --hdr->count;
    ls.MarkDirty(leaf_id);
  }
  size_.fetch_sub(1, std::memory_order_acq_rel);

  // D1: remove the element from the stab list holding it — the topmost
  // node on the path with a stabbing key. All path nodes are still held.
  if (InStabList(victim)) {
    bool erased = false;
    for (const PathEntry& pe : path) {
      Page* raw = ls.Get(pe.page);
      if (raw == nullptr) {
        return Status::Corruption("xrtree: deletion path node not held");
      }
      if (XrHeader(raw)->is_leaf) break;
      uint32_t slot;
      if (SmallestStabbingKey(raw, victim.start, victim.end, &slot)) {
        Position primary = XrInternalSlots(raw)[slot].key;
        XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries,
                            ReadNodeStab(raw));
        auto it = std::find_if(entries.begin(), entries.end(),
                               [&](const StabEntry& se) {
                                 return se.key == primary &&
                                        se.s == victim.start;
                               });
        if (it == entries.end()) {
          return Status::Corruption("InStabList element missing from the "
                                    "topmost stabbing node");
        }
        entries.erase(it);
        XR_RETURN_IF_ERROR(WriteNodeStab(raw, std::move(entries)));
        ls.MarkDirty(pe.page);
        erased = true;
        break;
      }
    }
    if (!erased) {
      return Status::Corruption("InStabList set but no stabbing key found");
    }
  }

  // D2: resolve leaf underflow.
  uint32_t count = XrHeader(lraw)->count;
  bool is_root_leaf = (leaf_id == root_.load(std::memory_order_acquire));
  if (is_root_leaf || count >= leaf_cap_ / 2) return Status::Ok();
  return HandleLeafUnderflow(ls, path);
}

Status XrTree::HandleLeafUnderflow(WriteLatchSet& ls,
                                   std::vector<PathEntry>& path) {
  assert(path.size() >= 2);
  PathEntry leaf_entry = path.back();
  PathEntry parent_entry = path[path.size() - 2];
  // Path convention: an entry's slot is the child slot taken FROM that
  // node, so the leaf's position within its parent lives on the parent's
  // entry.
  uint32_t child_slot = parent_entry.slot;

  Page* praw = ls.Get(parent_entry.page);
  Page* lraw = ls.Get(leaf_entry.page);
  if (praw == nullptr || lraw == nullptr) {
    return Status::Corruption("xrtree: underflow outside the crab scope");
  }
  auto* phdr = XrHeader(praw);
  auto* lhdr = XrHeader(lraw);
  uint32_t min_fill = leaf_cap_ / 2;

  // D22: redistribution with a sibling. Moving an element changes the
  // separator key, with full stab-list effects via ReplaceSeparatorKey.
  // Sibling latches are safe under the exclusive writer gate: no other
  // writer runs, and readers never hold a sibling while waiting on a page
  // this operation holds (they acquire strictly top-down).
  // A compressed sibling whose entries fit the fixed layout is converted
  // first (under its held W-latch), so the raw-slot moves below stay valid.
  // One whose count exceeds leaf_cap_ can't be converted — it always takes
  // the borrow branch (count > leaf_cap_ > min_fill) and is edited through
  // the codec instead; removing a boundary entry always re-encodes in
  // place (DESIGN.md §15 size-stability).
  if (child_slot > 0) {
    PageId sib_id = XrChildAt(praw, child_slot - 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    if (XrLeafIsCompressed(sraw) && shdr->count <= leaf_cap_) {
      XR_RETURN_IF_ERROR(DecompressLeafInPlace(ls, sib_id));
    }
    if (shdr->count > min_fill) {
      Element* lslots = XrLeafSlots(lraw);
      Element moved;
      if (XrLeafIsCompressed(sraw)) {
        std::vector<Element> sall;
        XR_RETURN_IF_ERROR(XrcDecodeLeaf(sraw, &sall));
        moved = sall.back();
        sall.pop_back();
        if (XrcEncodeLeaf(sraw, sall.data(), sall.size()) != sall.size()) {
          return Status::Corruption("xrtree: borrow re-encode did not fit");
        }
      } else {
        Element* sslots = XrLeafSlots(sraw);
        moved = sslots[shdr->count - 1];
        --shdr->count;
      }
      std::memmove(lslots + 1, lslots, lhdr->count * sizeof(Element));
      lslots[0] = moved;
      ++lhdr->count;
      Position knew = lslots[0].start;
      ls.MarkDirty(leaf_entry.page);
      ls.MarkDirty(sib_id);
      return ReplaceSeparatorKey(ls, parent_entry.page, child_slot - 1,
                                 knew);
    }
  }
  if (child_slot < phdr->count) {
    PageId sib_id = XrChildAt(praw, child_slot + 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    if (XrLeafIsCompressed(sraw) && shdr->count <= leaf_cap_) {
      XR_RETURN_IF_ERROR(DecompressLeafInPlace(ls, sib_id));
    }
    if (shdr->count > min_fill) {
      Element* lslots = XrLeafSlots(lraw);
      Element moved;
      Position knew;
      if (XrLeafIsCompressed(sraw)) {
        std::vector<Element> sall;
        XR_RETURN_IF_ERROR(XrcDecodeLeaf(sraw, &sall));
        moved = sall.front();
        sall.erase(sall.begin());
        if (XrcEncodeLeaf(sraw, sall.data(), sall.size()) != sall.size()) {
          return Status::Corruption("xrtree: borrow re-encode did not fit");
        }
        knew = sall.front().start;
      } else {
        Element* sslots = XrLeafSlots(sraw);
        moved = sslots[0];
        std::memmove(sslots, sslots + 1,
                     (shdr->count - 1) * sizeof(Element));
        --shdr->count;
        knew = sslots[0].start;
      }
      lslots[lhdr->count] = moved;
      ++lhdr->count;
      ls.MarkDirty(leaf_entry.page);
      ls.MarkDirty(sib_id);
      return ReplaceSeparatorKey(ls, parent_entry.page, child_slot, knew);
    }
  }

  // D23: merge with a sibling; the separator key disappears from the
  // parent (with its stab effects). The dead page is tombstoned under its
  // held W-latch and freed only after every latch drops (DeferFree).
  uint32_t removed_slot;
  if (child_slot > 0) {
    PageId sib_id = XrChildAt(praw, child_slot - 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    std::memcpy(XrLeafSlots(sraw) + shdr->count, XrLeafSlots(lraw),
                lhdr->count * sizeof(Element));
    shdr->count += lhdr->count;
    shdr->next = lhdr->next;
    if (lhdr->next != kInvalidPageId) {
      XR_ASSIGN_OR_RETURN(Page * nraw, ls.Acquire(lhdr->next));
      XrHeader(nraw)->prev = sib_id;
      ls.MarkDirty(lhdr->next);
    }
    ls.MarkDirty(sib_id);
    removed_slot = child_slot - 1;
    lhdr->magic = 0;  // tombstone: blocked readers see a dead page
    ls.MarkDirty(leaf_entry.page);
    ls.DeferFree(leaf_entry.page);
  } else {
    PageId sib_id = XrChildAt(praw, child_slot + 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    std::memcpy(XrLeafSlots(lraw) + lhdr->count, XrLeafSlots(sraw),
                shdr->count * sizeof(Element));
    lhdr->count += shdr->count;
    lhdr->next = shdr->next;
    if (shdr->next != kInvalidPageId) {
      XR_ASSIGN_OR_RETURN(Page * nraw, ls.Acquire(shdr->next));
      XrHeader(nraw)->prev = leaf_entry.page;
      ls.MarkDirty(shdr->next);
    }
    ls.MarkDirty(leaf_entry.page);
    removed_slot = child_slot;
    shdr->magic = 0;
    ls.MarkDirty(sib_id);
    ls.DeferFree(sib_id);
  }

  XR_RETURN_IF_ERROR(RemoveSeparatorKey(ls, parent_entry.page, removed_slot));

  bool parent_is_root =
      (parent_entry.page == root_.load(std::memory_order_acquire));
  if (parent_is_root && phdr->count == 0) {
    // D4: shorten the tree. RemoveSeparatorKey demoted every remaining
    // stab entry below, so the dying root's chain is empty. The store is
    // safe: we hold the old root's W-latch, so reader descents re-validate.
    if (phdr->stab_head != kInvalidPageId) {
      return Status::Corruption("shrinking root still owns stab entries");
    }
    root_.store(phdr->leftmost, std::memory_order_release);
    phdr->magic = 0;
    ls.MarkDirty(parent_entry.page);
    ls.DeferFree(parent_entry.page);
    return Status::Ok();
  }
  uint32_t imin = internal_cap_ / 2;
  if (parent_is_root || phdr->count >= imin) return Status::Ok();
  path.pop_back();
  return HandleInternalUnderflow(ls, path, path.size() - 1);
}

Status XrTree::HandleInternalUnderflow(WriteLatchSet& ls,
                                       std::vector<PathEntry>& path,
                                       size_t depth) {
  assert(depth >= 1);
  PathEntry node_entry = path[depth];
  PathEntry parent_entry = path[depth - 1];
  uint32_t child_slot = parent_entry.slot;

  Page* praw = ls.Get(parent_entry.page);
  Page* nraw = ls.Get(node_entry.page);
  if (praw == nullptr || nraw == nullptr) {
    return Status::Corruption("xrtree: underflow outside the crab scope");
  }
  auto* phdr = XrHeader(praw);
  XrInternalEntry* pslots = XrInternalSlots(praw);
  auto* nhdr = XrHeader(nraw);
  XrInternalEntry* nslots = XrInternalSlots(nraw);
  uint32_t imin = internal_cap_ / 2;

  // D32: redistribution through the parent. The separator comes down, the
  // sibling's boundary key goes up; ReplaceSeparatorKey then fixes every
  // stab consequence (the moved-up key's stabbed elements are pulled out
  // of the sibling by the descent sweep; the moved-down key's elements are
  // demoted out of the parent).
  if (child_slot > 0) {
    PageId sib_id = XrChildAt(praw, child_slot - 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    XrInternalEntry* sslots = XrInternalSlots(sraw);
    if (shdr->count > imin) {
      Position km = pslots[child_slot - 1].key;
      Position kl = sslots[shdr->count - 1].key;
      std::memmove(nslots + 1, nslots, nhdr->count * sizeof(XrInternalEntry));
      nslots[0] = {km, kNilPosition, kNilPosition, nhdr->leftmost};
      nhdr->leftmost = sslots[shdr->count - 1].child;
      ++nhdr->count;
      --shdr->count;
      ls.MarkDirty(node_entry.page);
      ls.MarkDirty(sib_id);
      return ReplaceSeparatorKey(ls, parent_entry.page, child_slot - 1, kl);
    }
  }
  if (child_slot < phdr->count) {
    PageId sib_id = XrChildAt(praw, child_slot + 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    XrInternalEntry* sslots = XrInternalSlots(sraw);
    if (shdr->count > imin) {
      Position km = pslots[child_slot].key;
      Position kf = sslots[0].key;
      nslots[nhdr->count] = {km, kNilPosition, kNilPosition, shdr->leftmost};
      ++nhdr->count;
      shdr->leftmost = sslots[0].child;
      std::memmove(sslots, sslots + 1,
                   (shdr->count - 1) * sizeof(XrInternalEntry));
      --shdr->count;
      ls.MarkDirty(node_entry.page);
      ls.MarkDirty(sib_id);
      return ReplaceSeparatorKey(ls, parent_entry.page, child_slot, kf);
    }
  }

  // D33: merge, pulling the separator key down into the surviving node and
  // concatenating the stab lists.
  uint32_t removed_slot;
  if (child_slot > 0) {
    PageId sib_id = XrChildAt(praw, child_slot - 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    XrInternalEntry* sslots = XrInternalSlots(sraw);
    Position km = pslots[child_slot - 1].key;
    sslots[shdr->count] = {km, kNilPosition, kNilPosition, nhdr->leftmost};
    ++shdr->count;
    std::memcpy(sslots + shdr->count, nslots,
                nhdr->count * sizeof(XrInternalEntry));
    shdr->count += nhdr->count;
    ls.MarkDirty(sib_id);
    XR_RETURN_IF_ERROR(MergeStabLists(sraw, nraw));
    ls.MarkDirty(sib_id);
    ls.MarkDirty(node_entry.page);
    removed_slot = child_slot - 1;
    nhdr->magic = 0;
    ls.DeferFree(node_entry.page);
  } else {
    PageId sib_id = XrChildAt(praw, child_slot + 1);
    XR_ASSIGN_OR_RETURN(Page * sraw, ls.Acquire(sib_id));
    auto* shdr = XrHeader(sraw);
    XrInternalEntry* sslots = XrInternalSlots(sraw);
    Position km = pslots[child_slot].key;
    nslots[nhdr->count] = {km, kNilPosition, kNilPosition, shdr->leftmost};
    ++nhdr->count;
    std::memcpy(nslots + nhdr->count, sslots,
                shdr->count * sizeof(XrInternalEntry));
    nhdr->count += shdr->count;
    XR_RETURN_IF_ERROR(MergeStabLists(nraw, sraw));
    ls.MarkDirty(node_entry.page);
    ls.MarkDirty(sib_id);
    removed_slot = child_slot;
    shdr->magic = 0;
    ls.DeferFree(sib_id);
  }

  XR_RETURN_IF_ERROR(RemoveSeparatorKey(ls, parent_entry.page, removed_slot));

  bool parent_is_root =
      (parent_entry.page == root_.load(std::memory_order_acquire));
  if (parent_is_root && phdr->count == 0) {
    if (phdr->stab_head != kInvalidPageId) {
      return Status::Corruption("shrinking root still owns stab entries");
    }
    root_.store(phdr->leftmost, std::memory_order_release);
    phdr->magic = 0;
    ls.MarkDirty(parent_entry.page);
    ls.DeferFree(parent_entry.page);
    return Status::Ok();
  }
  uint32_t imin2 = internal_cap_ / 2;
  if (parent_is_root || phdr->count >= imin2) return Status::Ok();
  return HandleInternalUnderflow(ls, path, depth - 1);
}

// ---------------------------------------------------------------------------
// Queries (Algorithms 3-5, §5.3)
// ---------------------------------------------------------------------------

Result<Element> XrTree::Search(Position key) const {
  XR_ASSIGN_OR_RETURN(ReadLatchedPage leaf, DescendToLeafRead(key));
  if (!leaf) return Status::NotFound("empty tree");
  Page* raw = leaf.get();
  if (XrLeafIsCompressed(raw)) {
    Element e;
    XR_ASSIGN_OR_RETURN(bool found, XrcLeafFind(raw, key, &e));
    if (found) {
      e.flags = 0;  // InStabList is an index detail, not element data
      return e;
    }
    return Status::NotFound("key " + std::to_string(key));
  }
  uint32_t at = XrLeafLowerBound(raw, key);
  if (at < XrHeader(raw)->count && XrLeafSlots(raw)[at].start == key) {
    Element e = XrLeafSlots(raw)[at];
    e.flags = 0;  // InStabList is an index detail, not element data
    return e;
  }
  return Status::NotFound("key " + std::to_string(key));
}

Result<ElementList> XrTree::FindDescendants(const Element& ancestor,
                                            uint64_t* scanned) const {
  // Algorithm 3: a range scan over (sa, ea) on the B+-tree backbone; stab
  // lists are never touched.
  ElementList out;
  XR_ASSIGN_OR_RETURN(XrIterator it, UpperBound(ancestor.start));
  while (it.Valid() && it.Get().start < ancestor.end) {
    Element e = it.Get();
    e.flags = 0;
    out.push_back(e);
    XR_RETURN_IF_ERROR(it.Next());
  }
  if (scanned) *scanned += it.scanned();
  return out;
}

Result<ElementList> XrTree::FindAncestorsAbove(Position sd,
                                               Position min_start,
                                               uint64_t* scanned,
                                               Position* next_start) const {
  for (;;) {  // root-retry, exactly like DescendToLeafRead
    ElementList out;
    uint64_t local_scanned = 0;
    Position terminator = kNilPosition;
    bool need_tail_probe = false;
    PageId root_id = root_.load(std::memory_order_acquire);
    if (root_id == kInvalidPageId) {
      if (next_start) *next_start = kNilPosition;
      return ElementList{};
    }
    auto fetched = pool_->FetchPage(root_id);
    if (!fetched.ok()) {
      if (root_.load(std::memory_order_acquire) != root_id) continue;
      return fetched.status();
    }
    ReadLatchedPage cur(pool_, *fetched);
    if (root_.load(std::memory_order_acquire) != root_id) continue;
    bool done = false;
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      Page* raw = cur.get();
      const auto* hdr = XrHeader(raw);
      if (!ValidXrMagic(raw)) {
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      if (hdr->is_leaf) {
        // S2: scan the leaf for un-stabbed ancestors until start > sd.
        // The §5.2 stack variation starts past min_start: elements at or
        // below it are already cached on the caller's stack. A compressed
        // leaf decodes only the landed-in suffix of mini-blocks; the
        // scratch always covers through the page end, so the terminator
        // logic below is unchanged.
        Position from = (min_start == 0) ? 0 : min_start + 1;
        std::vector<Element> scratch;
        const Element* slots;
        uint32_t nslots;
        if (XrLeafIsCompressed(raw)) {
          XR_RETURN_IF_ERROR(XrcDecodeLeafFrom(raw, from, &scratch));
          slots = scratch.data();
          nslots = static_cast<uint32_t>(scratch.size());
        } else {
          slots = XrLeafSlots(raw);
          nslots = hdr->count;
        }
        uint32_t i = 0;
        if (from != 0) {
          i = static_cast<uint32_t>(
              std::lower_bound(slots, slots + nslots, from,
                               [](const Element& e, Position k) {
                                 return e.start < k;
                               }) -
              slots);
        }
        for (; i < nslots && slots[i].start < sd; ++i) {
          ++local_scanned;
          if (!InStabList(slots[i]) && sd < slots[i].end) {
            Element e = slots[i];
            e.flags = 0;
            out.push_back(e);
          }
        }
        // The terminating element (first start > sd) is handed back as the
        // join's next CurA; it is not charged here — the caller's next
        // sweep or cursor move examines it.
        if (next_start) {
          if (i < nslots) {
            terminator = slots[i].start;
          } else {
            need_tail_probe = true;
          }
        }
        done = true;
        break;
      }
      // S11 / Algorithm 5: check PSL_c for c = i+1 down to 0, touching the
      // stab list only when the (ps, pe) summary proves a match exists.
      // The chain pages are read under this node's R latch, which is what
      // keeps a writer from rewriting the chain mid-read.
      const XrInternalEntry* slots = XrInternalSlots(raw);
      uint32_t upper = XrChildSlot(raw, sd);  // == i + 1
      if (upper >= hdr->count) upper = hdr->count == 0 ? 0 : hdr->count - 1;
      StabList list(pool_, hdr->stab_head, hdr->ps_dir, use_ps_dir_);
      std::vector<StabEntry> collected;
      for (uint32_t c = upper + 1; c-- > 0;) {
        if (slots[c].ps != kNilPosition && slots[c].ps < sd &&
            sd < slots[c].pe) {
          XR_RETURN_IF_ERROR(
              list.CollectStabbed(slots[c].key, sd, min_start, &collected,
                                  &local_scanned));
        }
      }
      for (const StabEntry& se : collected) out.push_back(ToElement(se));
      PageId child = XrChildAt(raw, XrChildSlot(raw, sd));
      XR_ASSIGN_OR_RETURN(Page * craw, pool_->FetchPage(child));
      ReadLatchedPage next(pool_, craw);
      cur = std::move(next);
    }
    if (!done) {
      return Status::Corruption("xrtree: descent did not reach a leaf");
    }
    cur.Release();
    if (need_tail_probe) {
      // The terminator lives past this leaf. A snapshot cursor's fresh
      // descent replaces the old unlatched chain walk: it is epoch-checked
      // and correct against concurrent leaf frees.
      XR_ASSIGN_OR_RETURN(XrIterator it, LowerBound(sd));
      if (it.Valid()) terminator = it.Get().start;
    }
    if (min_start != 0) {
      out.erase(std::remove_if(out.begin(), out.end(),
                               [&](const Element& e) {
                                 return e.start <= min_start;
                               }),
                out.end());
    }
    std::sort(out.begin(), out.end());
    if (scanned) *scanned += local_scanned;
    if (next_start) *next_start = terminator;
    return out;
  }
}

Result<ElementList> XrTree::FindAncestors(Position sd,
                                          uint64_t* scanned) const {
  return FindAncestorsAbove(sd, 0, scanned, nullptr);
}

Result<ElementList> XrTree::FindChildren(const Element& ancestor,
                                         uint64_t* scanned) const {
  XR_ASSIGN_OR_RETURN(ElementList all, FindDescendants(ancestor, scanned));
  ElementList out;
  for (const Element& e : all) {
    if (e.level == ancestor.level + 1) out.push_back(e);
  }
  return out;
}

Result<ElementList> XrTree::FindParent(Position sd, uint16_t level,
                                       uint64_t* scanned) const {
  if (level == 0) return ElementList{};  // roots have no parent
  XR_ASSIGN_OR_RETURN(ElementList all, FindAncestors(sd, scanned));
  ElementList out;
  for (const Element& e : all) {
    if (e.level + 1 == level) out.push_back(e);
  }
  return out;
}

Result<XrIterator> XrTree::LowerBound(Position key) const {
  XR_ASSIGN_OR_RETURN(ReadLatchedPage leaf, DescendToLeafRead(key));
  if (!leaf) return XrIterator();
  Page* raw = leaf.get();
  const auto* hdr = XrHeader(raw);
  // Snapshot under the latch; sample the chain link and the free epoch in
  // the same critical section so a lateral hop can detect index frees.
  PageId next = hdr->next;
  uint64_t epoch = pool_->free_epoch();
  std::vector<Element> snap;
  if (XrLeafIsCompressed(raw)) {
    XR_RETURN_IF_ERROR(XrcDecodeLeafFrom(raw, key, &snap));
    auto first = std::lower_bound(snap.begin(), snap.end(), key,
                                  [](const Element& e, Position k) {
                                    return e.start < k;
                                  });
    snap.erase(snap.begin(), first);
  } else {
    uint32_t at = XrLeafLowerBound(raw, key);
    snap.assign(XrLeafSlots(raw) + at, XrLeafSlots(raw) + hdr->count);
  }
  if (snap.empty()) {
    leaf.Release();
    XrIterator it(this, {}, next, epoch, key, false);
    XR_RETURN_IF_ERROR(it.LandOnNextLeaf());
    return it;
  }
  return XrIterator(this, std::move(snap), next, epoch, key, false);
}

Result<XrIterator> XrTree::UpperBound(Position key) const {
  if (key == kNilPosition) return XrIterator();
  return LowerBound(key + 1);
}

Result<XrIterator> XrTree::Begin() const { return LowerBound(0); }

Result<std::vector<Position>> XrTree::PartitionKeys(size_t max_keys) const {
  std::vector<Position> keys;
  if (max_keys == 0) return keys;

  auto walk = [&]() -> Result<std::vector<Position>> {
    std::vector<Position> found;
    PageId root_id = root_.load(std::memory_order_acquire);
    if (root_id == kInvalidPageId) return found;
    std::vector<PageId> level{root_id};
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      found.clear();
      std::vector<PageId> children;
      bool children_internal = false;
      for (PageId id : level) {
        XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(id));
        ReadLatchedPage page(pool_, raw);
        const auto* hdr = XrHeader(raw);
        if (hdr->magic != kXrInternalMagic) {
          if (hdr->magic == kXrLeafMagic && level.size() == 1) {
            return std::vector<Position>{};  // root is a leaf: no separators
          }
          return Status::Corruption(
              "xrtree: partition walk hit a foreign page");
        }
        const XrInternalEntry* slots = XrInternalSlots(raw);
        for (uint32_t i = 0; i < hdr->count; ++i) {
          found.push_back(slots[i].key);
        }
        children.push_back(hdr->leftmost);
        for (uint32_t i = 0; i < hdr->count; ++i) {
          children.push_back(slots[i].child);
        }
        if (!children_internal && !children.empty()) {
          XR_ASSIGN_OR_RETURN(Page * craw,
                              pool_->FetchPage(children.front()));
          ReadLatchedPage child(pool_, craw);
          children_internal = XrHeader(craw)->magic == kXrInternalMagic;
        }
      }
      // Within one level keys ascend left-to-right (they separate disjoint
      // ascending leaf ranges); stop at the first level that satisfies the
      // request, or at the last internal level.
      if (found.size() >= max_keys || !children_internal) break;
      level = std::move(children);
    }
    return found;
  };

  // The level walk holds one latch at a time, so a concurrent structural
  // change can invalidate ids between levels (NotFound on a freed page,
  // or a recycled page with the wrong magic). Retry a few times; if writers
  // keep winning, degrade to no partition points — any separator snapshot,
  // including the empty one, is a correct plan.
  for (int attempt = 0; attempt < 4; ++attempt) {
    Result<std::vector<Position>> r = walk();
    if (r.ok()) {
      keys = std::move(*r);
      break;
    }
    const Status& st = r.status();
    if (!st.IsNotFound() && !st.IsCorruption()) return st;
    if (attempt == 3) return std::vector<Position>{};
  }
  if (keys.size() <= max_keys) return keys;
  // Thin to an evenly spaced subset so partitions cover comparable numbers
  // of separator intervals.
  std::vector<Position> picked;
  picked.reserve(max_keys);
  for (size_t i = 1; i <= max_keys; ++i) {
    picked.push_back(keys[i * keys.size() / (max_keys + 1)]);
  }
  picked.erase(std::unique(picked.begin(), picked.end()), picked.end());
  return picked;
}

// ---------------------------------------------------------------------------
// Bulk loading
// ---------------------------------------------------------------------------

Status XrTree::BulkLoad(const ElementList& elements, double fill_fraction) {
  std::shared_lock<std::shared_mutex> commit_barrier(pool_->commit_mutex());
  // BulkLoad's contract is a quiescent, empty tree; the exclusive gate is a
  // cheap backstop against a stray concurrent writer.
  std::unique_lock<std::shared_mutex> gate(writer_gate_);
  if (root_.load(std::memory_order_acquire) != kInvalidPageId ||
      size_.load(std::memory_order_acquire) != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  if (fill_fraction <= 0.0 || fill_fraction > 1.0) {
    return Status::InvalidArgument("fill_fraction out of (0, 1]");
  }
  if (!std::is_sorted(elements.begin(), elements.end())) {
    return Status::InvalidArgument("BulkLoad input must be sorted by start");
  }
  size_t i = 0;
  return BulkLoadImpl(
      [&](Element* e) {
        if (i >= elements.size()) return false;
        *e = elements[i++];
        return true;
      },
      fill_fraction);
}

Status XrTree::BulkLoadFromFile(const ElementFile& file,
                                double fill_fraction) {
  std::shared_lock<std::shared_mutex> commit_barrier(pool_->commit_mutex());
  std::unique_lock<std::shared_mutex> gate(writer_gate_);
  if (root_.load(std::memory_order_acquire) != kInvalidPageId ||
      size_.load(std::memory_order_acquire) != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty tree");
  }
  if (fill_fraction <= 0.0 || fill_fraction > 1.0) {
    return Status::InvalidArgument("fill_fraction out of (0, 1]");
  }
  // One sequential pass over the file; the build's lookahead is bounded by
  // a page's worth of entries, so the corpus is never materialized.
  ElementFile::Scanner scanner = file.NewScanner();
  XR_RETURN_IF_ERROR(BulkLoadImpl(
      [&](Element* e) {
        if (!scanner.Valid()) return false;
        *e = scanner.Get();
        scanner.Next();
        return true;
      },
      fill_fraction));
  // An I/O or corruption stop looks like EOF to the pull source; surface it
  // (the partially built tree is garbage at that point).
  return scanner.status();
}

Status XrTree::Compact() {
  std::shared_lock<std::shared_mutex> commit_barrier(pool_->commit_mutex());
  std::unique_lock<std::shared_mutex> gate(writer_gate_);
  PageId root_id = root_.load(std::memory_order_acquire);
  if (root_id == kInvalidPageId) return Status::Ok();

  // Sorted elements come off the leaf chain (flags are an index detail and
  // are rebuilt by the load's stab pass).
  std::vector<Element> elems;
  {
    PageId cur = root_id;
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(cur));
      PageGuard page(pool_, raw);
      if (XrHeader(raw)->is_leaf) break;
      cur = XrHeader(raw)->leftmost;
    }
    while (cur != kInvalidPageId) {
      XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(cur));
      PageGuard page(pool_, raw);
      const auto* hdr = XrHeader(raw);
      if (hdr->magic != kXrLeafMagic) {
        return Status::Corruption("xrtree: compact hit a foreign page");
      }
      if (XrLeafIsCompressed(raw)) {
        XR_RETURN_IF_ERROR(XrcDecodeLeaf(raw, &elems));
      } else {
        const Element* slots = XrLeafSlots(raw);
        elems.insert(elems.end(), slots, slots + hdr->count);
      }
      cur = hdr->next;
    }
    for (Element& e : elems) e.flags = 0;
  }

  // Dismantle the old tree: clear each internal node's stab machinery,
  // then free every node page.
  std::vector<PageId> old_pages;
  std::vector<PageId> stack{root_id};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    old_pages.push_back(id);
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(id));
    PageGuard page(pool_, raw);
    const auto* hdr = XrHeader(raw);
    if (hdr->is_leaf) continue;
    StabList list(pool_, hdr->stab_head, hdr->ps_dir, use_ps_dir_,
                  compressed_);
    XR_RETURN_IF_ERROR(list.Clear());
    stack.push_back(hdr->leftmost);
    const XrInternalEntry* slots = XrInternalSlots(raw);
    for (uint32_t i = 0; i < hdr->count; ++i) stack.push_back(slots[i].child);
  }
  for (PageId id : old_pages) {
    XR_RETURN_IF_ERROR(pool_->FreePage(id));
  }
  root_.store(kInvalidPageId, std::memory_order_release);
  size_.store(0, std::memory_order_release);

  size_t i = 0;
  return BulkLoadImpl(
      [&](Element* e) {
        if (i >= elems.size()) return false;
        *e = elems[i++];
        return true;
      },
      1.0);
}

Status XrTree::BulkLoadImpl(const std::function<bool(Element*)>& next,
                            double fill_fraction) {
  // Fill targets are clamped above the half-full invariant so bulk-loaded
  // trees always pass CheckConsistency.
  const size_t min_fill = std::max<size_t>(1, leaf_cap_ / 2);
  const uint32_t leaf_fill =
      std::max<uint32_t>(static_cast<uint32_t>(min_fill),
                         static_cast<uint32_t>(leaf_cap_ * fill_fraction));
  const uint32_t internal_fill = std::max<uint32_t>(
      std::max<uint32_t>(2, internal_cap_ / 2),
      static_cast<uint32_t>(internal_cap_ * fill_fraction));

  // Bounded lookahead over the pull source: the tail rules below only need
  // to know whether fewer than one page plus min_fill elements remain, so
  // the buffer never grows past that horizon — this is what keeps
  // BulkLoadFromFile a streaming build.
  const size_t page_max =
      compressed_ ? size_t{kXrcMaxPageEntries} : size_t{leaf_cap_};
  const size_t horizon = page_max + min_fill;
  std::deque<Element> buf;
  bool exhausted = false;
  bool seen_any = false;
  Position prev_start = 0;
  uint64_t total_loaded = 0;
  auto refill = [&]() -> Status {
    while (!exhausted && buf.size() < horizon) {
      Element e;
      if (!next(&e)) {
        exhausted = true;
        break;
      }
      if (seen_any && e.start < prev_start) {
        return Status::InvalidArgument(
            "BulkLoad input must be sorted by start");
      }
      seen_any = true;
      prev_start = e.start;
      buf.push_back(e);
    }
    return Status::Ok();
  };
  XR_RETURN_IF_ERROR(refill());
  if (buf.empty()) return InitRootLeaf();

  struct ChildRef {
    Position first_key;
    PageId page;
  };
  std::vector<ChildRef> level;
  std::vector<PageId> leaf_pages;
  std::vector<Element> chunk;
  PageGuard prev;
  for (;;) {
    XR_RETURN_IF_ERROR(refill());
    if (buf.empty()) break;
    size_t rem = buf.size();
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->NewPage());
    PageGuard page(pool_, raw);
    page.MarkDirty();
    auto* hdr = XrHeader(raw);
    hdr->magic = kXrLeafMagic;
    hdr->is_leaf = 1;
    hdr->count = 0;
    hdr->format = kXrPageFormatFixed;
    hdr->next = kInvalidPageId;
    hdr->prev = prev ? prev.page_id() : kInvalidPageId;
    hdr->leftmost = kInvalidPageId;
    hdr->stab_head = kInvalidPageId;
    hdr->ps_dir = kInvalidPageId;

    size_t take;
    if (compressed_) {
      chunk.clear();
      size_t want = std::min(rem, page_max);
      for (size_t j = 0; j < want; ++j) {
        chunk.push_back(buf[j]);
        SetInStabList(&chunk.back(), false);
      }
      // Greedy longest-prefix encode tells us the achievable fan-out;
      // fill_fraction scales it the way it scales fixed slot counts.
      size_t n_full = XrcEncodeLeaf(raw, chunk.data(), chunk.size());
      if (n_full == 0) {
        return Status::Corruption("bulk load: leaf encode took no entries");
      }
      take = std::max<size_t>(
          min_fill, static_cast<size_t>(n_full * fill_fraction));
      take = std::min(take, n_full);
      bool fixed_fallback = false;
      if (exhausted && rem > take && rem - take < min_fill) {
        // The tail would be stranded below min_fill: absorb it, fall back
        // to the greedy prefix when that already leaves enough, leave
        // exactly min_fill behind, or — when the remainder is tiny but
        // incompressible — emit it as a single fixed-format page
        // (rem < 2*min_fill <= leaf_cap_ + 1, so it always fits).
        if (n_full >= rem) {
          take = rem;
        } else if (rem - n_full >= min_fill) {
          take = n_full;
        } else if (rem >= 2 * min_fill) {
          take = rem - min_fill;
        } else {
          fixed_fallback = true;
        }
      }
      if (fixed_fallback) {
        take = rem;
        hdr->format = kXrPageFormatFixed;
        hdr->count = static_cast<uint32_t>(take);
        Element* slots = XrLeafSlots(raw);
        for (size_t j = 0; j < take; ++j) {
          slots[j] = buf[j];
          SetInStabList(&slots[j], false);
        }
      } else if (take != n_full) {
        // Prefix re-encode always fits (strict subset of what just fit).
        if (XrcEncodeLeaf(raw, chunk.data(), take) != take) {
          return Status::Corruption("bulk load: prefix re-encode overflow");
        }
      }
    } else {
      // Pack `leaf_fill` entries per page, but never leave the final page
      // below the half-full invariant: either absorb the tail into this
      // page (it fits below capacity) or leave exactly the minimum behind.
      take = std::min<size_t>(leaf_fill, rem);
      if (exhausted && rem > take && rem - take < min_fill) {
        take = (rem <= leaf_cap_) ? rem : rem - min_fill;
      }
      hdr->count = static_cast<uint32_t>(take);
      Element* slots = XrLeafSlots(raw);
      for (size_t j = 0; j < take; ++j) {
        slots[j] = buf[j];
        SetInStabList(&slots[j], false);
      }
    }
    if (prev) {
      XrHeader(prev.get())->next = raw->page_id();
      prev.MarkDirty();
    }
    level.push_back({buf.front().start, raw->page_id()});
    leaf_pages.push_back(raw->page_id());
    buf.erase(buf.begin(), buf.begin() + static_cast<ptrdiff_t>(take));
    total_loaded += take;
    prev = std::move(page);
  }
  prev.Release();

  while (level.size() > 1) {
    std::vector<ChildRef> next_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t total = level.size() - i;
      size_t nchildren = std::min<size_t>(internal_fill + 1ull, total);
      size_t min_children = internal_cap_ / 2 + 1;
      if (total > nchildren && total - nchildren < min_children) {
        nchildren = (total <= internal_cap_ + 1ull) ? total
                                                    : total - min_children;
      }
      XR_ASSIGN_OR_RETURN(Page * raw, pool_->NewPage());
      PageGuard page(pool_, raw);
      page.MarkDirty();
      auto* hdr = XrHeader(raw);
      hdr->magic = kXrInternalMagic;
      hdr->is_leaf = 0;
      hdr->count = static_cast<uint32_t>(nchildren - 1);
      hdr->next = kInvalidPageId;
      hdr->prev = kInvalidPageId;
      hdr->leftmost = level[i].page;
      hdr->stab_head = kInvalidPageId;
      hdr->ps_dir = kInvalidPageId;
      XrInternalEntry* slots = XrInternalSlots(raw);
      for (size_t j = 1; j < nchildren; ++j) {
        slots[j - 1] = {level[i + j].first_key, kNilPosition, kNilPosition,
                        level[i + j].page};
      }
      next_level.push_back({level[i].first_key, raw->page_id()});
      i += nchildren;
    }
    level = std::move(next_level);
  }
  PageId new_root = level[0].page;

  // Stab pass: for every element, find the topmost node with a stabbing key
  // by descending the freshly built backbone, then write each node's chain
  // once. Descents are cache-friendly (elements arrive in leaf order).
  std::unordered_map<PageId, std::vector<StabEntry>> stabs;
  for (PageId leaf_id : leaf_pages) {
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(leaf_id));
    PageGuard leaf(pool_, raw);
    auto* hdr = XrHeader(raw);
    // On a compressed leaf the flag flip is an in-place single-byte varint
    // rewrite (DESIGN.md §15), so no re-encode is needed here either.
    bool comp = XrLeafIsCompressed(raw);
    std::vector<Element> all;
    Element* slots = nullptr;
    const Element* view;
    if (comp) {
      XR_RETURN_IF_ERROR(XrcDecodeLeaf(raw, &all));
      view = all.data();
    } else {
      slots = XrLeafSlots(raw);
      view = slots;
    }
    bool dirty = false;
    for (uint32_t i = 0; i < hdr->count; ++i) {
      PageId cur = new_root;
      while (cur != leaf_id) {
        XR_ASSIGN_OR_RETURN(Page * nraw, pool_->FetchPage(cur));
        PageGuard node(pool_, nraw);
        if (XrHeader(nraw)->is_leaf) break;
        uint32_t stab_slot;
        if (SmallestStabbingKey(nraw, view[i].start, view[i].end,
                                &stab_slot)) {
          Position key = XrInternalSlots(nraw)[stab_slot].key;
          stabs[cur].push_back(MakeStabEntry(view[i], key));
          if (comp) {
            XR_ASSIGN_OR_RETURN(bool found,
                                XrcLeafSetFlag(raw, view[i].start, true));
            if (!found) {
              return Status::Corruption("bulk load: stabbed entry vanished");
            }
          } else {
            SetInStabList(&slots[i], true);
          }
          dirty = true;
          break;
        }
        cur = XrChildAt(nraw, XrChildSlot(nraw, view[i].start));
      }
    }
    if (dirty) leaf.MarkDirty();
  }
  for (auto& [page_id, entries] : stabs) {
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(page_id));
    PageGuard node(pool_, raw);
    XR_RETURN_IF_ERROR(WriteNodeStab(raw, std::move(entries)));
    node.MarkDirty();
  }
  root_.store(new_root, std::memory_order_release);
  size_.store(total_loaded, std::memory_order_release);
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Introspection and validation
// ---------------------------------------------------------------------------

Result<uint32_t> XrTree::Height() const {
  for (;;) {
    PageId root_id = root_.load(std::memory_order_acquire);
    if (root_id == kInvalidPageId) return static_cast<uint32_t>(0);
    auto fetched = pool_->FetchPage(root_id);
    if (!fetched.ok()) {
      if (root_.load(std::memory_order_acquire) != root_id) continue;
      return fetched.status();
    }
    ReadLatchedPage cur(pool_, *fetched);
    if (root_.load(std::memory_order_acquire) != root_id) continue;
    uint32_t h = 1;
    for (int depth = 0; depth < kMaxTreeDepth; ++depth) {
      Page* raw = cur.get();
      if (!ValidXrMagic(raw)) {
        return Status::Corruption("xrtree: descent hit a foreign page");
      }
      if (XrHeader(raw)->is_leaf) return h;
      XR_ASSIGN_OR_RETURN(Page * craw,
                          pool_->FetchPage(XrHeader(raw)->leftmost));
      ReadLatchedPage next(pool_, craw);
      cur = std::move(next);
      ++h;
    }
    return Status::Corruption("xrtree: descent did not reach a leaf");
  }
}

Result<uint64_t> XrTree::CountEntries() {
  uint64_t n = 0;
  // Guard against leaf-chain cycles; see BTree::CountEntries.
  const uint64_t bound =
      uint64_t{pool_->disk()->num_pages()} * kXrLeafMaxEntries;
  XR_ASSIGN_OR_RETURN(XrIterator it, Begin());
  while (it.Valid()) {
    if (++n > bound) {
      return Status::Corruption("xrtree: leaf chain cycle while counting");
    }
    XR_RETURN_IF_ERROR(it.Next());
  }
  size_.store(n, std::memory_order_release);
  return n;
}

Result<StabStats> XrTree::ComputeStabStats() const {
  // Quiescent-only: the unlatched whole-tree walk races structural changes.
  StabStats stats;
  PageId root_id = root_.load(std::memory_order_acquire);
  if (root_id == kInvalidPageId) return stats;
  std::vector<PageId> stack{root_id};
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(id));
    PageGuard page(pool_, raw);
    const auto* hdr = XrHeader(raw);
    if (hdr->is_leaf) {
      ++stats.leaf_pages;
      continue;
    }
    ++stats.internal_nodes;
    StabList list(pool_, hdr->stab_head, hdr->ps_dir, use_ps_dir_);
    XR_ASSIGN_OR_RETURN(uint32_t pages, list.CountPages());
    XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, list.ReadAll());
    stats.stab_pages += pages;
    stats.stab_entries += entries.size();
    stats.max_stab_pages_per_node =
        std::max(stats.max_stab_pages_per_node, pages);
    if (hdr->ps_dir != kInvalidPageId) ++stats.ps_dir_pages;
    stack.push_back(hdr->leftmost);
    const XrInternalEntry* slots = XrInternalSlots(raw);
    for (uint32_t i = 0; i < hdr->count; ++i) stack.push_back(slots[i].child);
  }
  if (stats.internal_nodes > 0) {
    stats.avg_stab_pages_per_node =
        static_cast<double>(stats.stab_pages) /
        static_cast<double>(stats.internal_nodes);
  }
  return stats;
}

Status XrTree::CheckNode(PageId id, bool is_root, Position lo, Position hi,
                         int* height) const {
  XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(id));
  PageGuard page(pool_, raw);
  const auto* hdr = XrHeader(raw);

  if (hdr->is_leaf) {
    if (hdr->magic != kXrLeafMagic) return Status::Corruption("leaf magic");
    if (!is_root && hdr->count < leaf_cap_ / 2) {
      return Status::Corruption("leaf underfilled");
    }
    std::vector<Element> scratch;
    const Element* slots;
    if (XrLeafIsCompressed(raw)) {
      // A compressed leaf holds up to kXrcMaxPageEntries, not leaf_cap_;
      // the decoder validates the block headers and count.
      if (hdr->count > kXrcMaxPageEntries) {
        return Status::Corruption("leaf overfull");
      }
      XR_RETURN_IF_ERROR(XrcDecodeLeaf(raw, &scratch));
      slots = scratch.data();
    } else {
      if (hdr->count > leaf_cap_) return Status::Corruption("leaf overfull");
      slots = XrLeafSlots(raw);
    }
    for (uint32_t i = 0; i < hdr->count; ++i) {
      if (i > 0 && !(slots[i - 1].start < slots[i].start)) {
        return Status::Corruption("leaf keys out of order");
      }
      if (slots[i].start < lo || slots[i].start >= hi) {
        return Status::Corruption("leaf key outside bounds");
      }
    }
    *height = 1;
    return Status::Ok();
  }

  if (hdr->magic != kXrInternalMagic) {
    return Status::Corruption("internal magic");
  }
  if (!is_root && hdr->count < internal_cap_ / 2) {
    return Status::Corruption("internal underfilled");
  }
  if (is_root && hdr->count < 1) {
    return Status::Corruption("internal root without keys");
  }
  if (hdr->count > internal_cap_) {
    return Status::Corruption("internal overfull");
  }
  const XrInternalEntry* slots = XrInternalSlots(raw);
  for (uint32_t i = 0; i < hdr->count; ++i) {
    if (i > 0 && !(slots[i - 1].key < slots[i].key)) {
      return Status::Corruption("internal keys out of order");
    }
    if (slots[i].key < lo || slots[i].key >= hi) {
      return Status::Corruption("internal key outside bounds");
    }
  }

  // Stab-chain structural checks: global (key, s) order, keys present in
  // the node, PSLs strictly nested with matching (ps, pe) summaries.
  StabList list(pool_, hdr->stab_head, hdr->ps_dir, use_ps_dir_);
  XR_ASSIGN_OR_RETURN(std::vector<StabEntry> entries, list.ReadAll());
  for (size_t i = 0; i < entries.size(); ++i) {
    const StabEntry& se = entries[i];
    if (i > 0 && !StabEntryLess(entries[i - 1], se)) {
      return Status::Corruption("stab chain out of order");
    }
    if (!(se.s <= se.key && se.key <= se.e)) {
      return Status::Corruption("stab entry not stabbed by its key");
    }
    bool key_found = false;
    uint32_t key_slot = 0;
    for (uint32_t k = 0; k < hdr->count; ++k) {
      if (slots[k].key == se.key) {
        key_found = true;
        key_slot = k;
        break;
      }
      if (slots[k].key > se.key) break;
    }
    if (!key_found) {
      return Status::Corruption("stab entry tagged with a foreign key");
    }
    // Smallest-stabbing-key rule.
    if (key_slot > 0 && se.s <= slots[key_slot - 1].key &&
        slots[key_slot - 1].key <= se.e) {
      return Status::Corruption("stab entry not tagged with smallest key");
    }
    // Nesting within the PSL.
    if (i > 0 && entries[i - 1].key == se.key) {
      if (!(entries[i - 1].s < se.s && se.e < entries[i - 1].e)) {
        return Status::Corruption("PSL not strictly nested");
      }
    }
  }
  // (ps, pe) summaries.
  {
    size_t ei = 0;
    for (uint32_t k = 0; k < hdr->count; ++k) {
      while (ei < entries.size() && entries[ei].key < slots[k].key) ++ei;
      if (ei < entries.size() && entries[ei].key == slots[k].key) {
        if (slots[k].ps != entries[ei].s || slots[k].pe != entries[ei].e) {
          return Status::Corruption("(ps, pe) summary stale");
        }
      } else if (slots[k].ps != kNilPosition ||
                 slots[k].pe != kNilPosition) {
        return Status::Corruption("(ps, pe) should be nil");
      }
    }
  }
  // ps-directory agreement: every key's run must start on the page the
  // directory names.
  if (hdr->ps_dir != kInvalidPageId) {
    for (const StabEntry& se : entries) {
      XR_ASSIGN_OR_RETURN(std::vector<StabEntry> psl, list.ReadPsl(se.key));
      if (psl.empty() || psl[0].key != se.key) {
        return Status::Corruption("ps directory misses a PSL");
      }
    }
  }

  int child_height = -1;
  for (uint32_t i = 0; i <= hdr->count; ++i) {
    Position clo = (i == 0) ? lo : slots[i - 1].key;
    Position chi = (i == hdr->count) ? hi : slots[i].key;
    int h = 0;
    XR_RETURN_IF_ERROR(CheckNode(XrChildAt(raw, i), false, clo, chi, &h));
    if (child_height == -1) child_height = h;
    if (h != child_height) {
      return Status::Corruption("children at different heights");
    }
  }
  *height = child_height + 1;
  return Status::Ok();
}

Status XrTree::CheckConsistency() const {
  // Quiescent-only, like the structural pass it extends.
  PageId root_id = root_.load(std::memory_order_acquire);
  if (root_id == kInvalidPageId) return Status::Ok();
  int height = 0;
  XR_RETURN_IF_ERROR(CheckNode(root_id, true, 0, kNilPosition, &height));

  // Semantic pass: snapshot every internal node (keys + stab entries, with
  // ancestry) and every leaf element, then re-derive where each element
  // must live and compare.
  struct NodeSnap {
    PageId id;
    std::vector<Position> keys;
    std::vector<StabEntry> entries;
  };
  std::vector<NodeSnap> nodes;
  std::vector<Element> elems;  // with flags
  uint64_t leaf_count = 0;

  struct Walk {
    PageId id;
  };
  std::vector<Walk> stack{{root_id}};
  while (!stack.empty()) {
    PageId id = stack.back().id;
    stack.pop_back();
    XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(id));
    PageGuard page(pool_, raw);
    const auto* hdr = XrHeader(raw);
    if (hdr->is_leaf) {
      if (XrLeafIsCompressed(raw)) {
        std::vector<Element> all;
        XR_RETURN_IF_ERROR(XrcDecodeLeaf(raw, &all));
        elems.insert(elems.end(), all.begin(), all.end());
      } else {
        const Element* slots = XrLeafSlots(raw);
        elems.insert(elems.end(), slots, slots + hdr->count);
      }
      leaf_count += hdr->count;
      continue;
    }
    NodeSnap snap;
    snap.id = id;
    const XrInternalEntry* slots = XrInternalSlots(raw);
    for (uint32_t i = 0; i < hdr->count; ++i) snap.keys.push_back(slots[i].key);
    XR_ASSIGN_OR_RETURN(snap.entries, ReadNodeStab(raw));
    nodes.push_back(std::move(snap));
    stack.push_back({hdr->leftmost});
    for (uint32_t i = 0; i < hdr->count; ++i) stack.push_back({slots[i].child});
  }
  if (leaf_count != size_.load(std::memory_order_acquire)) {
    return Status::Corruption("tracked size != leaf element count");
  }

  // Expected placement per element: descend an in-memory mirror.
  std::unordered_map<PageId, const NodeSnap*> by_id;
  for (const NodeSnap& n : nodes) by_id[n.id] = &n;

  uint64_t expected_stabbed = 0;
  for (const Element& e : elems) {
    // Find the topmost node with a key in [start, end] along the descent.
    PageId cur = root_id;
    const NodeSnap* found = nullptr;
    Position primary = 0;
    while (by_id.count(cur)) {
      const NodeSnap* n = by_id.at(cur);
      auto it = std::lower_bound(n->keys.begin(), n->keys.end(), e.start);
      if (it != n->keys.end() && *it <= e.end) {
        found = n;
        primary = *it;
        break;
      }
      // Descend: first key > e.start decides the child; re-fetch the page
      // to map child slots to page ids.
      XR_ASSIGN_OR_RETURN(Page * raw, pool_->FetchPage(cur));
      PageGuard page(pool_, raw);
      cur = XrChildAt(raw, XrChildSlot(raw, e.start));
    }
    if (found == nullptr) {
      if (InStabList(e)) {
        return Status::Corruption("element flagged InStabList but no key "
                                  "stabs it: " + e.ToString());
      }
      continue;
    }
    ++expected_stabbed;
    if (!InStabList(e)) {
      return Status::Corruption("element stabbed but flag is no: " +
                                e.ToString());
    }
    bool present = false;
    for (const StabEntry& se : found->entries) {
      if (se.s == e.start && se.e == e.end && se.key == primary) {
        present = true;
        break;
      }
    }
    if (!present) {
      return Status::Corruption("element missing from its topmost node's "
                                "stab list: " + e.ToString());
    }
  }
  uint64_t total_entries = 0;
  for (const NodeSnap& n : nodes) total_entries += n.entries.size();
  if (total_entries != expected_stabbed) {
    return Status::Corruption(
        "stab entry count mismatch: " + std::to_string(total_entries) +
        " entries vs " + std::to_string(expected_stabbed) + " stabbed");
  }
  return Status::Ok();
}

}  // namespace xrtree
