// Validates the §6.1 observation: "We ran all the algorithms with varying
// buffer pool sizes and found that their performance was not essentially
// affected" — because all algorithms scan sequentially and probe indexes in
// key order, so pages are touched at most once.

#include <cstdio>

#include "bench/bench_common.h"

int main() {
  using namespace xrtree;
  using namespace xrtree::bench;
  BenchEnv env = GetBenchEnv();
  const Dataset& ds = DepartmentDataset();
  DerivedWorkload w =
      MakeAncestorSelectivity(ds.ancestors, ds.descendants, 0.40, 0.99);

  PrintHeader("Buffer-pool sensitivity (§6.1), " + ds.name +
              " at join-A = 40%");
  std::printf("%12s | %10s %10s %10s\n", "pool pages", "no-index", "B+",
              "XR-stack");
  for (size_t pages : {16ull, 50ull, 100ull, 400ull, 1600ull, 6400ull}) {
    auto r = RunJoins(w.ancestors, w.descendants, pages, env.miss_latency_us);
    std::printf("%12zu | %10llu %10llu %10llu   (page misses)\n", pages,
                (unsigned long long)r[0].page_misses,
                (unsigned long long)r[1].page_misses,
                (unsigned long long)r[2].page_misses);
  }
  std::printf("\npaper's claim: miss counts essentially flat across pool "
              "sizes\n");
  return 0;
}
