#ifndef XRTREE_BENCH_BENCH_COMMON_H_
#define XRTREE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "join/element_source.h"
#include "join/join_types.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/datasets.h"
#include "workload/selectivity.h"

namespace xrtree {
namespace bench {

/// Environment-tunable benchmark parameters.
///
///   XR_SCALE           target generated elements per dataset (default 300000;
///                      the paper's 90 MB documents held ~1.5M — set
///                      XR_SCALE=1500000 to match)
///   XR_BUFFER_PAGES    buffer pool size in pages (default 100, §6.1)
///   XR_MISS_LATENCY_US modelled per-page-miss latency for the derived
///                      elapsed time (default 5000 us ≈ one 2002-era disk
///                      access; measured wall time is reported separately)
struct BenchEnv {
  uint64_t scale = 300000;
  uint64_t buffer_pages = 100;
  uint64_t miss_latency_us = 5000;
};

BenchEnv GetBenchEnv();

/// A scratch on-disk database deleted on destruction.
class BenchDb {
 public:
  explicit BenchDb(size_t pool_pages, size_t shard_count = 0);
  ~BenchDb();
  BufferPool* pool() { return pool_.get(); }
  DiskManager* disk() { return &disk_; }

  /// Drops the current pool (flushing) and attaches a fresh, cold one of
  /// `pool_pages` frames (and `shard_count` shards, 0 = auto) over the same
  /// file.
  void SwapPool(size_t pool_pages, size_t shard_count = 0);

 private:
  std::string path_;
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
};

enum class Algo { kNoIndex, kBPlus, kXrStack };

const char* AlgoName(Algo algo);

/// One algorithm execution over one workload.
struct RunResult {
  Algo algo;
  uint64_t scanned = 0;
  uint64_t pairs = 0;
  uint64_t page_misses = 0;
  uint64_t disk_reads = 0;
  double wall_seconds = 0;
  double modeled_seconds = 0;  ///< page_misses * XR_MISS_LATENCY_US
};

/// Builds the three storage representations of both element sets in a fresh
/// database with `pool_pages` frames, runs the requested algorithms
/// (count-only), and reports per-run I/O deltas. The pool is flushed and the
/// counters reset before each run so algorithms see identical cold-ish
/// state.
std::vector<RunResult> RunJoins(const ElementList& ancestors,
                                const ElementList& descendants,
                                size_t pool_pages, uint64_t miss_latency_us,
                                bool parent_child = false);

/// Loads (and memoizes on disk of the process lifetime) the two evaluation
/// datasets at the environment scale.
const Dataset& DepartmentDataset();
const Dataset& ConferenceDataset();

/// Pretty printing helpers.
void PrintHeader(const std::string& title);
std::string Thousands(uint64_t n);  ///< "1609" style thousands-of-elements

/// Minimal JSON emitter for the benches' machine-readable `--json <path>`
/// output. Keys keep insertion order; values are rendered on Set, so a
/// JsonObject can nest another via SetRaw(child.Dump()).
class JsonObject {
 public:
  void Set(const std::string& key, uint64_t value);
  void Set(const std::string& key, int value) { Set(key, uint64_t(value)); }
  void Set(const std::string& key, double value);
  void Set(const std::string& key, bool value);
  void Set(const std::string& key, const std::string& value);
  void Set(const std::string& key, const char* value) {
    Set(key, std::string(value));
  }
  void SetRaw(const std::string& key, const std::string& raw_json);
  std::string Dump() const;  ///< {"k":v,...}

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

std::string JsonEscape(const std::string& s);
/// ["a","b",...] from pre-rendered items (use JsonObject::Dump or literals).
std::string JsonArray(const std::vector<std::string>& raw_items);

/// Extracts the value of a `--json <path>` argument pair from argv (empty
/// string when absent).
std::string ParseJsonPathArg(int argc, char** argv);
/// Writes `content` (plus trailing newline) to `path`; returns false and
/// prints to stderr on failure.
bool WriteTextFile(const std::string& path, const std::string& content);

}  // namespace bench
}  // namespace xrtree

#endif  // XRTREE_BENCH_BENCH_COMMON_H_
