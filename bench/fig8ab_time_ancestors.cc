// Reproduces Fig. 8(a)(b): elapsed time for varying join selectivity on
// ancestors, 99% of descendants joining. Reports buffer-pool page misses,
// the modelled elapsed time (misses x XR_MISS_LATENCY_US — the paper's
// elapsed time was dominated by page misses, §6.2) and measured wall time.

#include <cstdio>

#include "bench/bench_common.h"

namespace xrtree {
namespace bench {
namespace {

void RunFigure(const Dataset& ds, const char* label) {
  BenchEnv env = GetBenchEnv();
  PrintHeader(std::string("Fig 8(") + label + ") " + ds.name +
              ": elapsed time vs ancestor selectivity (join-D = 99%)");
  std::printf("%8s | %21s | %21s | %21s\n", "", "no-index", "B+", "XR-stack");
  std::printf("%8s | %8s %12s | %8s %12s | %8s %12s\n", "Join-A", "misses",
              "modeled(s)", "misses", "modeled(s)", "misses", "modeled(s)");
  for (double sel : {0.90, 0.70, 0.55, 0.40, 0.25, 0.15, 0.05, 0.01}) {
    DerivedWorkload w =
        MakeAncestorSelectivity(ds.ancestors, ds.descendants, sel, 0.99);
    auto r = RunJoins(w.ancestors, w.descendants, env.buffer_pages,
                      env.miss_latency_us);
    std::printf("%7.0f%% | %8llu %12.2f | %8llu %12.2f | %8llu %12.2f\n",
                sel * 100, (unsigned long long)r[0].page_misses,
                r[0].modeled_seconds, (unsigned long long)r[1].page_misses,
                r[1].modeled_seconds, (unsigned long long)r[2].page_misses,
                r[2].modeled_seconds);
  }
}

}  // namespace
}  // namespace bench
}  // namespace xrtree

int main() {
  using namespace xrtree::bench;
  BenchEnv env = GetBenchEnv();
  std::printf("scale=%llu, buffer=%llu pages, modeled miss latency=%llu us\n",
              (unsigned long long)env.scale,
              (unsigned long long)env.buffer_pages,
              (unsigned long long)env.miss_latency_us);
  RunFigure(DepartmentDataset(), "a");
  RunFigure(ConferenceDataset(), "b");
  return 0;
}
