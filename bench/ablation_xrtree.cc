// Ablations for the three XR-tree design choices DESIGN.md calls out:
//
//  A. Split-key selection (§3.2): the paper chooses a leaf split key that
//     stabs as few elements as possible (first_right - 1 when it still
//     separates); the naive choice is the right leaf's first key.
//     Measured: stab entries / pages after incremental build.
//
//  B. ps-directory pages (Fig. 4): without them, locating a PSL inside a
//     multi-page stab chain scans from the chain head.
//     Measured: page misses per FindAncestors probe on deep data.
//
//  C. The §5.2 XR-stack probe floor ("return ancestors after the stack
//     top"): without it every probe re-scans its landing-leaf prefix.
//     Measured: elements scanned by the join.

#include <cstdio>

#include "bench/bench_common.h"
#include "common/random.h"
#include "join/xr_stack.h"
#include "xml/generator.h"
#include "xrtree/xrtree.h"

namespace xrtree {
namespace bench {
namespace {

void SplitKeyAblation() {
  PrintHeader("A. split-key choice (§3.2): stab volume after incremental "
              "inserts");
  std::printf("%-24s %12s %12s %12s\n", "variant", "stab entries",
              "stab pages", "entries/elem");
  const Dataset& ds = DepartmentDataset();
  size_t n = std::min<size_t>(ds.ancestors.size(), 60000);
  ElementList elems(ds.ancestors.begin(), ds.ancestors.begin() + n);
  for (bool naive : {false, true}) {
    BenchDb db(4096);
    XrTreeOptions options;
    options.naive_split_key = naive;
    XrTree tree(db.pool(), kInvalidPageId, options);
    for (const Element& e : elems) XR_CHECK_OK(tree.Insert(e));
    auto stats = tree.ComputeStabStats().value();
    std::printf("%-24s %12llu %12llu %12.4f\n",
                naive ? "naive (first_right)" : "paper (first_right-1)",
                (unsigned long long)stats.stab_entries,
                (unsigned long long)stats.stab_pages,
                static_cast<double>(stats.stab_entries) / elems.size());
  }
}

void PsDirectoryAblation() {
  PrintHeader("B. ps-directory (Fig. 4): page misses per FindAncestors on "
              "deeply nested data");
  std::printf("%-12s %-18s %14s %14s %12s\n", "nesting", "variant",
              "misses/probe", "dir pages", "max chain");
  for (uint32_t nesting : {400u, 2500u}) {
  // Deep chains + tiny fanout force multi-page stab chains; the paper
  // motivates the directory with "extreme cases" where one chain spans
  // "tens of pages" — the 2500-deep row is that regime.
  Document doc = Generator::GenerateNested(nesting, /*chains=*/2,
                                           /*fanout=*/0);
  doc.EncodeRegions(1);
  ElementList elems = doc.ElementsWithTag("nest");
  for (bool disable : {false, true}) {
    BenchDb db(64);
    XrTreeOptions options;
    options.leaf_capacity = 8;
    options.internal_capacity = 8;
    options.disable_ps_directory = disable;
    XrTree tree(db.pool(), kInvalidPageId, options);
    XR_CHECK_OK(tree.BulkLoad(elems));
    auto stats = tree.ComputeStabStats().value();
    Random rng(3);
    const uint64_t probes = 100;
    uint64_t misses = 0;
    for (uint64_t q = 0; q < probes; ++q) {
      // Cold probe: a fresh pool per query so every touched page is a
      // real I/O (a warm pool hides the chain scan entirely).
      db.SwapPool(64);
      XrTree reopened(db.pool(), tree.root(), options);
      db.pool()->ResetStats();
      Position sd = elems[rng.Uniform(elems.size())].start + 1;
      reopened.FindAncestors(sd).value();
      misses += db.pool()->stats().buffer_misses;
    }
    std::printf("%-12u %-18s %14.2f %14llu %12u\n", nesting,
                disable ? "no directory" : "with directory",
                static_cast<double>(misses) / probes,
                (unsigned long long)stats.ps_dir_pages,
                stats.max_stab_pages_per_node);
  }
  }
}

void ProbeFloorAblation() {
  PrintHeader("C. XR-stack probe floor (§5.2): elements scanned by the "
              "join");
  std::printf("%-24s %14s\n", "variant", "scanned");
  const Dataset& ds = DepartmentDataset();
  DerivedWorkload w =
      MakeAncestorSelectivity(ds.ancestors, ds.descendants, 0.90, 0.99);
  BenchDb db(8192);
  StoredElementSet a_set(db.pool(), "A");
  StoredElementSet d_set(db.pool(), "D");
  XR_CHECK_OK(a_set.Build(w.ancestors));
  XR_CHECK_OK(d_set.Build(w.descendants));
  for (bool disable : {false, true}) {
    JoinOptions options;
    options.materialize = false;
    options.disable_probe_floor = disable;
    auto out = XrStackJoin(a_set.xrtree(), d_set.xrtree(), options).value();
    std::printf("%-24s %14llu\n",
                disable ? "plain Algorithm 4" : "stack variation",
                (unsigned long long)out.stats.elements_scanned);
  }
}

}  // namespace
}  // namespace bench
}  // namespace xrtree

int main() {
  xrtree::bench::SplitKeyAblation();
  xrtree::bench::PsDirectoryAblation();
  xrtree::bench::ProbeFloorAblation();
  return 0;
}
