#include "workload/datasets.h"

#include "xml/dtd.h"
#include "xml/generator.h"

namespace xrtree {

namespace {

Result<Dataset> MakeDataset(std::string name, const Dtd& dtd,
                            std::string ancestor_tag,
                            std::string descendant_tag,
                            uint64_t target_elements, uint64_t seed,
                            double recursion_decay) {
  GeneratorOptions options;
  options.seed = seed;
  options.target_elements = target_elements;
  options.recursion_decay = recursion_decay;
  XR_ASSIGN_OR_RETURN(Document doc, Generator::Generate(dtd, options));

  Dataset ds;
  ds.name = std::move(name);
  ds.ancestor_tag = std::move(ancestor_tag);
  ds.descendant_tag = std::move(descendant_tag);
  ds.corpus.AddDocument(std::move(doc));
  ds.ancestors = ds.corpus.ElementsWithTag(ds.ancestor_tag);
  ds.descendants = ds.corpus.ElementsWithTag(ds.descendant_tag);
  TagId anc = ds.corpus.document(0).FindTag(ds.ancestor_tag);
  ds.max_nesting =
      anc == kInvalidTagId ? 0 : ds.corpus.document(0).MaxSelfNesting(anc);
  return ds;
}

}  // namespace

Result<Dataset> MakeDepartmentDataset(uint64_t target_elements,
                                      uint64_t seed) {
  // A gentle decay keeps employee chains deep (h_d well above 5), matching
  // the paper's "highly nested" characterization.
  return MakeDataset("department(employee//name)", Dtd::Department(),
                     "employee", "name", target_elements, seed,
                     /*recursion_decay=*/0.92);
}

Result<Dataset> MakeConferenceDataset(uint64_t target_elements,
                                      uint64_t seed) {
  return MakeDataset("conference(paper//author)", Dtd::Conference(), "paper",
                     "author", target_elements, seed,
                     /*recursion_decay=*/0.8);
}

Result<Dataset> MakeXMarkDataset(uint64_t target_elements, uint64_t seed) {
  return MakeDataset("xmark(listitem//text)", Dtd::XMark(), "listitem",
                     "text", target_elements, seed,
                     /*recursion_decay=*/0.95);
}

Result<Dataset> MakeXMachDataset(uint64_t target_elements, uint64_t seed) {
  return MakeDataset("xmach(section//paragraph)", Dtd::XMach(), "section",
                     "paragraph", target_elements, seed,
                     /*recursion_decay=*/0.9);
}

}  // namespace xrtree
