#include "btree/btree_iterator.h"

#include <cassert>

#include "btree/btree.h"

namespace xrtree {

BTreeIterator::BTreeIterator(const BTree* tree, PageGuard leaf, uint32_t slot)
    : tree_(tree), leaf_(std::move(leaf)), slot_(slot) {
  if (leaf_) {
    assert(slot_ < BTreeHeader(leaf_.get())->count);
    scanned_ = 1;  // landing on an element examines it
  }
}

const Element& BTreeIterator::Get() const {
  assert(Valid());
  return LeafSlots(leaf_.get())[slot_];
}

Status BTreeIterator::Next() {
  if (!Valid()) return Status::InvalidArgument("Next on invalid iterator");
  const auto* hdr = BTreeHeader(leaf_.get());
  if (slot_ + 1 < hdr->count) {
    ++slot_;
    ++scanned_;
    return Status::Ok();
  }
  PageId next = hdr->next;
  BufferPool* pool = tree_->pool();
  leaf_.Release();
  while (next != kInvalidPageId) {
    XR_ASSIGN_OR_RETURN(Page * raw, pool->FetchPage(next));
    leaf_ = PageGuard(pool, raw);
    slot_ = 0;
    if (BTreeHeader(raw)->magic != kBTreeLeafMagic) {
      leaf_.Release();
      leaf_ = PageGuard();
      return Status::Corruption("btree: leaf chain points at a foreign page");
    }
    if (BTreeHeader(raw)->count > 0) {
      ++scanned_;
      return Status::Ok();
    }
    next = BTreeHeader(raw)->next;
    leaf_.Release();
  }
  leaf_ = PageGuard();
  return Status::Ok();
}

Status BTreeIterator::SeekPastKey(Position key) {
  if (tree_ == nullptr) {
    return Status::InvalidArgument("SeekPastKey on default iterator");
  }
  const BTree* tree = tree_;
  uint64_t scanned = scanned_;
  leaf_.Release();
  XR_ASSIGN_OR_RETURN(BTreeIterator fresh, tree->UpperBound(key));
  *this = std::move(fresh);
  // Preserve the accumulated count across the reseek; the landing element
  // is examined (and charged) like any other scan. An off-the-end result
  // comes back with a null tree pointer; restore it so the iterator stays
  // reseekable.
  scanned_ += scanned;
  tree_ = tree;
  return Status::Ok();
}

}  // namespace xrtree
