// Multi-threaded structural-join driver: N reader threads drain a shared
// queue of join jobs (XR-stack, Stack-Tree-Desc and B+-probe, §6.2's three
// algorithms) against one shared sharded buffer pool, for thread counts
// 1..T. Reports throughput scaling and the per-shard hit/miss balance.
//
// The workload is deliberately miss-dominated: the pool is smaller than the
// working set and the disk charges a *blocking* (sleeping) per-access
// latency, modelling a device that serves independent requests
// concurrently. Threads therefore overlap their miss waits — which is
// exactly what the sharded pool permits and a single global pool latch
// would serialize — so throughput scales with threads even on one core.
//
// Environment knobs:
//   XR_CONC_SCALE            elements per dataset side (default 40000)
//   XR_CONC_THREADS          max reader threads T (default 4)
//   XR_CONC_POOL             shared pool size in pages (default 128)
//   XR_CONC_SHARDS           pool shards (default 8)
//   XR_CONC_JOBS             join jobs per thread-count round (default 8)
//   XR_CONC_MISS_LATENCY_US  blocking per-disk-access latency (default 250)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "join/bplus_join.h"
#include "join/stack_tree_desc.h"
#include "join/xr_stack.h"
#include "storage/element_file.h"

namespace xrtree {
namespace bench {
namespace {

uint64_t EnvU64(const char* name, uint64_t dflt) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return dflt;
  return std::strtoull(v, nullptr, 10);
}

struct SetRoots {
  PageId file_head = kInvalidPageId;
  uint64_t file_size = 0;
  PageId bt_root = kInvalidPageId;
  PageId xr_root = kInvalidPageId;
};

/// Runs one join job: every thread builds its own lightweight index handles
/// (XrTree/BTree/ElementFile are stateless cursors over the shared pool) and
/// executes the algorithm picked by job index. Returns the pair count.
uint64_t RunOneJoin(BufferPool* pool, const SetRoots& a, const SetRoots& d,
                    size_t job) {
  JoinOptions options;
  options.materialize = false;
  JoinOutput out;
  switch (job % 3) {
    case 0: {
      XrTree a_xr(pool, a.xr_root);
      XrTree d_xr(pool, d.xr_root);
      out = XrStackJoin(a_xr, d_xr, options).value();
      break;
    }
    case 1: {
      ElementFile a_file(pool);
      ElementFile d_file(pool);
      a_file.OpenExisting(a.file_head, a.file_size);
      d_file.OpenExisting(d.file_head, d.file_size);
      out = StackTreeDescJoin(a_file, d_file, options).value();
      break;
    }
    default: {
      BTree a_bt(pool, a.bt_root);
      BTree d_bt(pool, d.bt_root);
      out = BPlusJoin(a_bt, d_bt, options).value();
      break;
    }
  }
  return out.stats.output_pairs;
}

}  // namespace
}  // namespace bench
}  // namespace xrtree

int main(int argc, char** argv) {
  using namespace xrtree;
  using namespace xrtree::bench;

  const std::string json_path = ParseJsonPathArg(argc, argv);
  const uint64_t scale = EnvU64("XR_CONC_SCALE", 40000);
  const uint64_t max_threads = EnvU64("XR_CONC_THREADS", 4);
  const uint64_t pool_pages = EnvU64("XR_CONC_POOL", 128);
  const uint64_t shards = EnvU64("XR_CONC_SHARDS", 8);
  const uint64_t jobs_per_round = EnvU64("XR_CONC_JOBS", 8);
  const uint64_t miss_latency_us = EnvU64("XR_CONC_MISS_LATENCY_US", 250);

  PrintHeader("Concurrent structural joins over one shared sharded pool");
  std::printf(
      "scale=%llu elements/side, pool=%llu pages x %llu shards, "
      "%llu jobs/round, blocking miss latency=%llu us\n",
      (unsigned long long)scale, (unsigned long long)pool_pages,
      (unsigned long long)shards, (unsigned long long)jobs_per_round,
      (unsigned long long)miss_latency_us);

  auto ds = MakeDepartmentDataset(scale);
  XR_CHECK_OK(ds.status());

  // Build all three representations of both sides with a big latency-free
  // pool, then shrink to the shared measurement pool and turn on the
  // simulated device latency. Reads below here are miss-dominated.
  BenchDb db(8192);
  SetRoots a, d;
  {
    StoredElementSet a_set(db.pool(), "A");
    StoredElementSet d_set(db.pool(), "D");
    XR_CHECK_OK(a_set.Build(ds->ancestors));
    XR_CHECK_OK(d_set.Build(ds->descendants));
    a = {a_set.file().head(), a_set.file().size(), a_set.btree().root(),
         a_set.xrtree().root()};
    d = {d_set.file().head(), d_set.file().size(), d_set.btree().root(),
         d_set.xrtree().root()};
  }

  DiskOptions latency;
  latency.simulated_latency_ns = miss_latency_us * 1000;
  latency.blocking_latency = true;
  db.disk()->SetLatency(latency);

  // Single-threaded ground truth for result verification.
  db.SwapPool(pool_pages, shards);
  std::vector<uint64_t> expected(3);
  for (size_t algo = 0; algo < 3; ++algo) {
    expected[algo] = RunOneJoin(db.pool(), a, d, algo);
  }

  std::printf("\n%8s %10s %12s %10s %10s %14s\n", "threads", "seconds",
              "joins/sec", "speedup", "misses", "exhaust_waits");
  double base_rate = 0;
  bool monotonic = true;
  double prev_rate = 0;
  std::atomic<uint64_t> wrong_results{0};

  std::vector<uint64_t> thread_counts;
  for (uint64_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  if (thread_counts.back() != max_threads) thread_counts.push_back(max_threads);

  std::vector<std::string> round_json;
  for (uint64_t threads : thread_counts) {
    db.SwapPool(pool_pages, shards);  // cold, identical start for each round
    BufferPool* pool = db.pool();
    IoStats before = pool->stats();
    std::atomic<size_t> next_job{0};
    auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(threads);
    for (uint64_t w = 0; w < threads; ++w) {
      workers.emplace_back([&] {
        for (;;) {
          size_t job = next_job.fetch_add(1);
          if (job >= jobs_per_round) break;
          uint64_t pairs = RunOneJoin(pool, a, d, job);
          if (pairs != expected[job % 3]) {
            wrong_results.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    auto t1 = std::chrono::steady_clock::now();
    double secs = std::chrono::duration<double>(t1 - t0).count();
    IoStats io = pool->stats() - before;
    double rate = jobs_per_round / secs;
    if (base_rate == 0) base_rate = rate;
    if (rate + 1e-9 < prev_rate) monotonic = false;
    prev_rate = rate;
    std::printf("%8llu %10.2f %12.2f %9.2fx %10llu %14llu\n",
                (unsigned long long)threads, secs, rate, rate / base_rate,
                (unsigned long long)io.buffer_misses,
                (unsigned long long)io.pool_exhausted_waits);
    JsonObject o;
    o.Set("threads", threads);
    o.Set("seconds", secs);
    o.Set("joins_per_sec", rate);
    o.Set("speedup", rate / base_rate);
    o.Set("buffer_misses", io.buffer_misses);
    o.Set("pool_exhausted_waits", io.pool_exhausted_waits);
    round_json.push_back(o.Dump());
  }

  std::printf("\nPer-shard balance (final round):\n");
  BufferPool* pool = db.pool();
  for (size_t s = 0; s < pool->shard_count(); ++s) {
    IoStats ss = pool->shard_stats(s);
    uint64_t total = ss.buffer_hits + ss.buffer_misses;
    double hit_rate =
        total == 0 ? 0.0 : 100.0 * ss.buffer_hits / static_cast<double>(total);
    std::printf("  shard %2zu: %9llu accesses, %5.1f%% hit rate\n", s,
                (unsigned long long)total, hit_rate);
  }

  if (!json_path.empty()) {
    JsonObject top;
    top.Set("bench", "concurrent_joins");
    top.Set("scale", scale);
    top.Set("pool_pages", pool_pages);
    top.Set("shards", shards);
    top.Set("jobs_per_round", jobs_per_round);
    top.Set("miss_latency_us", miss_latency_us);
    top.Set("monotonic", monotonic);
    top.Set("wrong_results", wrong_results.load());
    top.SetRaw("rounds", JsonArray(round_json));
    if (!WriteTextFile(json_path, top.Dump())) return 1;
    std::printf("\nwrote %s\n", json_path.c_str());
  }

  if (wrong_results.load() > 0) {
    std::printf("\nFAIL: %llu join(s) returned pair counts differing from "
                "the single-threaded run\n",
                (unsigned long long)wrong_results.load());
    return 1;
  }
  std::printf("\nall concurrent joins matched single-threaded results; "
              "1->%llu thread scaling %s\n",
              (unsigned long long)thread_counts.back(),
              monotonic ? "monotonic" : "NOT monotonic");
  return monotonic ? 0 : 2;
}
