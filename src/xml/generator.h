#ifndef XRTREE_XML_GENERATOR_H_
#define XRTREE_XML_GENERATOR_H_

#include <cstdint>

#include "common/result.h"
#include "xml/document.h"
#include "xml/dtd.h"

namespace xrtree {

/// Knobs for the DTD-driven generator — our stand-in for the IBM AlphaWorks
/// XML generator the paper used (§6.1). Defaults approximate that tool's
/// default behaviour: modest fanouts with geometric repetition and decaying
/// recursion, which yields employee nesting of ~10+ levels on the
/// Department DTD and flat paper/author structure on the Conference DTD.
struct GeneratorOptions {
  uint64_t seed = 20030305;  ///< ICDE 2003 started March 5 — arbitrary fixed seed

  /// Soft target for the total node count; top-level repetition continues
  /// until it is reached, and recursion is curtailed once it is exceeded.
  uint64_t target_elements = 100000;

  /// Mean repetition of `+` and `*` particles (geometric distribution).
  double mean_plus = 3.0;
  double mean_star = 2.0;

  /// Probability that an `?` particle is present.
  double optional_probability = 0.5;

  /// Multiplier applied to mean_star per recursion level for recursive
  /// particles, so recursive subtrees thin out with depth.
  double recursion_decay = 0.8;

  /// Hard cap on tree depth (guards against runaway recursion).
  uint32_t max_depth = 64;
};

/// Generates synthetic XML documents from a DTD.
class Generator {
 public:
  /// Builds one document conforming to `dtd`. Regions are NOT yet encoded;
  /// callers encode directly or via Corpus.
  static Result<Document> Generate(const Dtd& dtd,
                                   const GeneratorOptions& options);

  /// Builds a document where elements tagged `tag` form chains nested
  /// exactly `nesting` deep, with `chains` independent chains and `fanout`
  /// non-nesting `leaf` children per level. Gives precise control over the
  /// paper's h_d parameter for the §3.3 stab-list study.
  static Document GenerateNested(uint32_t nesting, uint32_t chains,
                                 uint32_t fanout);
};

}  // namespace xrtree

#endif  // XRTREE_XML_GENERATOR_H_
