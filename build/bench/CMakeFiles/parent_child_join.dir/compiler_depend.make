# Empty compiler generated dependencies file for parent_child_join.
# This may be replaced when dependencies are built.
