#include "storage/fault_injection.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/checksum.h"
#include "storage/disk_manager.h"
#include "tests/test_util.h"

namespace xrtree {
namespace {

// ---------------------------------------------------------------------------
// Checksum / trailer unit tests
// ---------------------------------------------------------------------------

TEST(ChecksumTest, Crc32KnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  // Incremental computation composes.
  uint32_t partial = Crc32("12345", 5);
  EXPECT_EQ(Crc32("6789", 4, partial), 0xCBF43926u);
}

TEST(ChecksumTest, StampVerifyRoundTrip) {
  char page[kPageSize] = {};
  std::memset(page, 0x5A, kPageDataSize);
  StampPageTrailer(page, 7);
  EXPECT_OK(VerifyPageTrailer(page, 7));
}

TEST(ChecksumTest, ZeroPageIsFresh) {
  char page[kPageSize] = {};
  EXPECT_OK(VerifyPageTrailer(page, 3));
}

TEST(ChecksumTest, FlippedBitDetected) {
  char page[kPageSize] = {};
  std::memset(page, 0x5A, kPageDataSize);
  StampPageTrailer(page, 7);
  page[100] ^= 0x01;
  EXPECT_TRUE(VerifyPageTrailer(page, 7).IsCorruption());
  page[100] ^= 0x01;
  EXPECT_OK(VerifyPageTrailer(page, 7));
  // Flipping a trailer byte is detected too.
  page[kPageSize - 1] ^= 0x80;
  EXPECT_TRUE(VerifyPageTrailer(page, 7).IsCorruption());
}

TEST(ChecksumTest, MisdirectedWriteDetected) {
  // A page stamped for id 7 must not verify as page 8: the id is mixed
  // into the checksum so misdirected writes are caught.
  char page[kPageSize] = {};
  std::memset(page, 0x5A, kPageDataSize);
  StampPageTrailer(page, 7);
  EXPECT_TRUE(VerifyPageTrailer(page, 8).IsCorruption());
}

TEST(ChecksumTest, DataWithoutTrailerDetected) {
  // Nonzero payload with an all-zero trailer models a torn write that
  // never reached the trailer bytes, or a pre-checksum page.
  char page[kPageSize] = {};
  page[0] = 1;
  EXPECT_TRUE(VerifyPageTrailer(page, 1).IsCorruption());
}

TEST(ChecksumTest, WrongVersionDetected) {
  char page[kPageSize] = {};
  std::memset(page, 0x5A, kPageDataSize);
  StampPageTrailer(page, 7);
  PageTrailer t;
  std::memcpy(&t, page + PageLayout::kDataSize, sizeof(t));
  t.version = PageLayout::kFormatVersion + 1;
  std::memcpy(page + PageLayout::kDataSize, &t, sizeof(t));
  EXPECT_TRUE(VerifyPageTrailer(page, 7).IsCorruption());
}

// ---------------------------------------------------------------------------
// FaultInjectingDisk behaviour at the DiskInterface level
// ---------------------------------------------------------------------------

/// A temp file + DiskManager + FaultInjectingDisk + BufferPool stack.
class FaultyDb {
 public:
  explicit FaultyDb(size_t pool_pages = 64) {
    Init();
    pool_ = std::make_unique<BufferPool>(faulty_.get(), pool_pages);
  }

  /// Full-options form: the fault-tolerance tests tune the retry policies.
  explicit FaultyDb(const BufferPoolOptions& options) {
    Init();
    pool_ = std::make_unique<BufferPool>(faulty_.get(), options);
  }

  ~FaultyDb() {
    pool_.reset();
    faulty_.reset();
    disk_.Close().ok();
    std::remove(path_.c_str());
  }

  BufferPool* pool() { return pool_.get(); }
  FaultInjectingDisk* faulty() { return faulty_.get(); }
  DiskManager* base() { return &disk_; }
  const std::string& path() const { return path_; }

 private:
  void Init() {
    char tmpl[] = "/tmp/xrtree_fault_XXXXXX";
    int fd = ::mkstemp(tmpl);
    if (fd >= 0) ::close(fd);
    path_ = tmpl;
    XR_CHECK_OK(disk_.Open(path_));
    faulty_ = std::make_unique<FaultInjectingDisk>(&disk_);
  }

  std::string path_;
  DiskManager disk_;
  std::unique_ptr<FaultInjectingDisk> faulty_;
  std::unique_ptr<BufferPool> pool_;
};

TEST(FaultInjectionTest, FailNthWriteSurfacesIoError) {
  FaultyDb db;
  PageId id = db.faulty()->AllocatePage();
  char buf[kPageSize] = {1};
  db.faulty()->FailNthWrite(1);
  EXPECT_TRUE(db.faulty()->WritePage(id, buf).IsIoError());
  // The fault is one-shot: the next write goes through.
  EXPECT_OK(db.faulty()->WritePage(id, buf));
  EXPECT_EQ(db.faulty()->faults_injected(), 1u);
}

TEST(FaultInjectionTest, TransientReadFailsOnceThenSucceeds) {
  FaultyDb db;
  PageId id = db.faulty()->AllocatePage();
  char out[kPageSize];
  std::memset(out, 0x42, kPageSize);
  ASSERT_OK(db.faulty()->WritePage(id, out));
  db.faulty()->TransientFailNthRead(1);
  char in[kPageSize];
  Status first = db.faulty()->ReadPage(id, in);
  EXPECT_TRUE(first.IsIoError());
  EXPECT_NE(first.message().find("transient"), std::string::npos);
  // Retrying the same operation succeeds and returns intact data.
  ASSERT_OK(db.faulty()->ReadPage(id, in));
  EXPECT_EQ(std::memcmp(in, out, kPageSize), 0);
}

TEST(FaultInjectionTest, CrashSilentlyDropsAllLaterWrites) {
  FaultyDb db;
  PageId id = db.faulty()->AllocatePage();
  char first[kPageSize];
  std::memset(first, 0x11, kPageSize);
  ASSERT_OK(db.faulty()->WritePage(id, first));  // write #1: durable
  db.faulty()->CrashAtWrite(2);
  char second[kPageSize];
  std::memset(second, 0x22, kPageSize);
  ASSERT_OK(db.faulty()->WritePage(id, second));  // write #2: dropped, but OK
  ASSERT_OK(db.faulty()->WritePage(id, second));  // write #3: also dropped
  EXPECT_TRUE(db.faulty()->crashed());
  EXPECT_OK(db.faulty()->Sync());  // power loss: sync can't fail either
  char in[kPageSize];
  ASSERT_OK(db.base()->ReadPage(id, in));
  EXPECT_EQ(std::memcmp(in, first, kPageSize), 0);
}

TEST(FaultInjectionTest, TornWriteLeavesDetectablePartialPage) {
  FaultyDb db;
  // Write page images through the pool so they carry valid trailers.
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->NewPage());
    PageGuard g(db.pool(), p);
    id = g.page_id();
    std::memset(p->data(), 0x33, kPageDataSize);
    g.MarkDirty();
  }
  ASSERT_OK(db.pool()->FlushAll());

  // Rewrite the page, but tear the physical write halfway through.
  {
    ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(id));
    PageGuard g(db.pool(), p);
    std::memset(p->data(), 0x44, kPageDataSize);
    g.MarkDirty();
  }
  db.faulty()->TearNthWrite(db.faulty()->writes() + 1, kPageSize / 2);
  ASSERT_OK(db.pool()->FlushAll());  // the torn write reports success
  EXPECT_TRUE(db.faulty()->crashed());

  // A fresh pool (cold cache) must detect the tear. With no WAL to repair
  // from, the quarantine/repair pass finds no clean image: DataLoss.
  BufferPool cold(db.base(), 8);
  auto fetched = cold.FetchPage(id);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsDataLoss()) << fetched.status().ToString();
  EXPECT_TRUE(cold.IsQuarantined(id));
}

TEST(FaultInjectionTest, ReadFaultSurfacesThroughBufferPool) {
  FaultyDb db(4);
  PageId id;
  {
    ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->NewPage());
    PageGuard g(db.pool(), p);
    id = g.page_id();
    g.MarkDirty();
  }
  ASSERT_OK(db.pool()->FlushAll());
  // Evict it so the next fetch issues a physical read.
  ASSERT_OK(db.pool()->DiscardPage(id));
  db.faulty()->FailNthRead(db.faulty()->reads() + 1);
  auto fetched = db.pool()->FetchPage(id);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsIoError());
  // The frame was reclaimed: the pool still works afterwards.
  ASSERT_OK_AND_ASSIGN(Page * again, db.pool()->FetchPage(id));
  ASSERT_OK(db.pool()->UnpinPage(again->page_id(), false));
}

TEST(FaultInjectionTest, WriteFaultSurfacesThroughFlush) {
  FaultyDb db(4);
  {
    ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->NewPage());
    PageGuard g(db.pool(), p);
    g.MarkDirty();
  }
  db.faulty()->FailNthWrite(db.faulty()->writes() + 1);
  EXPECT_TRUE(db.pool()->FlushAll().IsIoError());
  // Retry succeeds (the page is still dirty after the failed flush).
  EXPECT_OK(db.pool()->FlushAll());
}

TEST(FaultInjectionTest, RandomCrashPlanIsReproducible) {
  for (uint64_t seed = 1; seed <= 32; ++seed) {
    FaultPlan a = FaultPlan::RandomCrashPlan(seed, 100);
    FaultPlan b = FaultPlan::RandomCrashPlan(seed, 100);
    ASSERT_EQ(a.faults.size(), 1u);
    ASSERT_EQ(b.faults.size(), 1u);
    EXPECT_EQ(a.faults[0].kind, b.faults[0].kind);
    EXPECT_EQ(a.faults[0].op, b.faults[0].op);
    EXPECT_EQ(a.faults[0].arg, b.faults[0].arg);
    EXPECT_GE(a.faults[0].op, 1u);
    EXPECT_LE(a.faults[0].op, 100u);
  }
  // Different seeds disagree somewhere (sanity: the plan is seed-driven).
  FaultPlan p1 = FaultPlan::RandomCrashPlan(1, 1000);
  FaultPlan p2 = FaultPlan::RandomCrashPlan(2, 1000);
  EXPECT_TRUE(p1.faults[0].op != p2.faults[0].op ||
              p1.faults[0].kind != p2.faults[0].kind ||
              p1.faults[0].arg != p2.faults[0].arg);
}

// ---------------------------------------------------------------------------
// Retry, quarantine and repair behaviour of the BufferPool fetch path
// ---------------------------------------------------------------------------

/// Writes one pattern page through `pool`, flushes it and evicts it so the
/// next fetch must do a physical read. Returns the page id.
PageId WriteAndEvictPatternPage(BufferPool* pool, char fill) {
  auto page = pool->NewPage();
  XR_CHECK_OK(page.status());
  PageId id = (*page)->page_id();
  std::memset((*page)->data(), fill, kPageDataSize);
  XR_CHECK_OK(pool->UnpinPage(id, true));
  XR_CHECK_OK(pool->FlushAll());
  XR_CHECK_OK(pool->DiscardPage(id));
  return id;
}

/// Flips one byte inside page `id`'s data area directly in the database
/// file: persistent on-media rot, unlike the injector's wire flips.
void FlipOnDiskByte(const std::string& path, PageId id) {
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  off_t at = static_cast<off_t>(id) * kPageSize + 123;
  char byte;
  ASSERT_EQ(::pread(fd, &byte, 1, at), 1);
  byte = static_cast<char>(byte ^ 0x40);
  ASSERT_EQ(::pwrite(fd, &byte, 1, at), 1);
  ::close(fd);
}

TEST(FaultToleranceTest, PoolRetriesTransientReadFault) {
  FaultyDb db;
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x42);
  db.faulty()->TransientFailNthRead(db.faulty()->reads() + 1);
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(id));
  PageGuard g(db.pool(), p);
  std::vector<char> want(kPageDataSize, 0x42);
  EXPECT_EQ(std::memcmp(p->data(), want.data(), kPageDataSize), 0);
  EXPECT_GE(db.pool()->stats().io_retries, 1u);
}

TEST(FaultToleranceTest, HardReadFaultIsNotRetried) {
  FaultyDb db;
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x21);
  uint64_t retries_before = db.pool()->stats().io_retries;
  db.faulty()->FailNthRead(db.faulty()->reads() + 1);
  auto fetched = db.pool()->FetchPage(id);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsIoError());
  EXPECT_FALSE(fetched.status().IsRetryable());
  // A fatal error never burns retry budget.
  EXPECT_EQ(db.pool()->stats().io_retries, retries_before);
  // The pool is unharmed afterwards.
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(id));
  ASSERT_OK(db.pool()->UnpinPage(p->page_id(), false));
}

TEST(FaultToleranceTest, ExhaustedRetryBudgetSurfacesRetryableError) {
  BufferPoolOptions options;
  options.pool_size = 8;
  options.io_retry.max_retries = 0;  // no second chance
  FaultyDb db(options);
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x17);
  db.faulty()->TransientFailNthRead(db.faulty()->reads() + 1);
  auto fetched = db.pool()->FetchPage(id);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsIoError());
  // The surfaced error keeps its retryable taxonomy so a caller-level
  // policy (e.g. JoinOptions::degrade_to_serial) can still recover.
  EXPECT_TRUE(fetched.status().IsRetryable()) << fetched.status().ToString();
}

TEST(FaultToleranceTest, SustainedTransientFaultsHonorMaxFaults) {
  FaultyDb db;
  PageId id = db.faulty()->AllocatePage();
  char buf[kPageSize];
  std::memset(buf, 0x55, kPageSize);
  ASSERT_OK(db.faulty()->WritePage(id, buf));
  SustainedFaultOptions sustained;
  sustained.transient_read_prob = 1.0;
  sustained.seed = 7;
  sustained.max_faults = 3;
  db.faulty()->EnableSustainedFaults(sustained);
  char out[kPageSize];
  for (int i = 0; i < 3; ++i) {
    Status s = db.faulty()->ReadPage(id, out);
    ASSERT_TRUE(s.IsIoError()) << s.ToString();
    EXPECT_TRUE(s.IsRetryable());
  }
  // The fault budget is spent: the device is clean again.
  ASSERT_OK(db.faulty()->ReadPage(id, out));
  EXPECT_EQ(std::memcmp(out, buf, kPageSize), 0);
  EXPECT_EQ(db.faulty()->sustained_transient_faults(), 3u);
  db.faulty()->DisableSustainedFaults();
}

TEST(FaultToleranceTest, WireCorruptionHealsByCleanReread) {
  FaultyDb db;
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x5A);
  SustainedFaultOptions sustained;
  sustained.corrupt_read_prob = 1.0;
  sustained.seed = 11;
  sustained.max_faults = 1;  // one flipped image, then the device is clean
  db.faulty()->EnableSustainedFaults(sustained);
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(id));
  PageGuard g(db.pool(), p);
  std::vector<char> want(kPageDataSize, 0x5A);
  EXPECT_EQ(std::memcmp(p->data(), want.data(), kPageDataSize), 0);
  // One quarantine + repair cycle, resolved by a clean re-read (the file
  // itself was never damaged) and lifted again.
  IoStats s = db.pool()->stats();
  EXPECT_EQ(s.repairs_attempted, 1u);
  EXPECT_EQ(s.repairs_succeeded, 1u);
  EXPECT_EQ(s.pages_quarantined, 1u);
  EXPECT_FALSE(db.pool()->IsQuarantined(id));
  EXPECT_TRUE(db.pool()->QuarantineSnapshot().empty());
  EXPECT_EQ(db.faulty()->sustained_corrupt_faults(), 1u);
}

TEST(FaultToleranceTest, PersistentCorruptionQuarantinesAsDataLoss) {
  FaultyDb db;
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x66);
  FlipOnDiskByte(db.path(), id);
  // Every re-read sees the same rotted bytes and there is no WAL to repair
  // from: the fetch must fail DataLoss and quarantine the id.
  auto fetched = db.pool()->FetchPage(id);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsDataLoss()) << fetched.status().ToString();
  EXPECT_TRUE(db.pool()->IsQuarantined(id));
  std::vector<PageId> quarantined = db.pool()->QuarantineSnapshot();
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0], id);
  // Later fetches re-attempt repair (a clean image may have appeared) and
  // keep failing the same way; the quarantine census counts the id once.
  uint64_t attempts = db.pool()->stats().repairs_attempted;
  auto again = db.pool()->FetchPage(id);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsDataLoss());
  IoStats s = db.pool()->stats();
  EXPECT_GT(s.repairs_attempted, attempts);
  EXPECT_EQ(s.repairs_succeeded, 0u);
  EXPECT_EQ(s.pages_quarantined, 1u);
}

TEST(FaultToleranceTest, FailedPrefetchInstallsNothingAndIsCounted) {
  FaultyDb db;
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x71);
  db.faulty()->FailNthRead(db.faulty()->reads() + 1);
  // Prefetch is best-effort: the failed read is swallowed (counted, not
  // surfaced) and no frame may be installed from it.
  ASSERT_OK(db.pool()->PrefetchPages(std::vector<PageId>{id}));
  EXPECT_GE(db.pool()->stats().prefetch_errors, 1u);
  IoStats before = db.pool()->stats();
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(id));
  PageGuard g(db.pool(), p);
  std::vector<char> want(kPageDataSize, 0x71);
  EXPECT_EQ(std::memcmp(p->data(), want.data(), kPageDataSize), 0);
  // The demand fetch was a genuine miss: nothing was left behind.
  IoStats delta = db.pool()->stats() - before;
  EXPECT_EQ(delta.buffer_misses, 1u);
  EXPECT_EQ(delta.buffer_hits, 0u);
}

TEST(FaultToleranceTest, CorruptPrefetchIsSkippedNeverServed) {
  FaultyDb db;
  PageId id = WriteAndEvictPatternPage(db.pool(), 0x72);
  SustainedFaultOptions sustained;
  sustained.corrupt_read_prob = 1.0;
  sustained.seed = 13;
  sustained.max_faults = 1;
  db.faulty()->EnableSustainedFaults(sustained);
  uint64_t errors_before = db.pool()->stats().prefetch_errors;
  ASSERT_OK(db.pool()->PrefetchPages(std::vector<PageId>{id}));
  EXPECT_EQ(db.pool()->stats().prefetch_errors, errors_before + 1);
  EXPECT_EQ(db.faulty()->sustained_corrupt_faults(), 1u);
  // The flipped image was dropped, not installed: the demand fetch re-reads
  // the intact file and serves clean bytes with no repair cycle at all.
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(id));
  PageGuard g(db.pool(), p);
  std::vector<char> want(kPageDataSize, 0x72);
  EXPECT_EQ(std::memcmp(p->data(), want.data(), kPageDataSize), 0);
  EXPECT_EQ(db.pool()->stats().repairs_attempted, 0u);
  EXPECT_TRUE(db.pool()->QuarantineSnapshot().empty());
}

// ---------------------------------------------------------------------------
// Miss accounting and the ReadBatch fault matrix
// ---------------------------------------------------------------------------

TEST(FaultToleranceTest, OneMissPerLogicalFetchUnderTransientFaults) {
  FaultyDb db;
  constexpr int kPages = 6;
  PageId ids[kPages];
  for (int i = 0; i < kPages; ++i) {
    ids[i] = WriteAndEvictPatternPage(db.pool(), static_cast<char>(0x30 + i));
  }
  // Sprinkle one-shot transient faults over the upcoming demand reads:
  // retries must burn io_retries, never extra misses.
  uint64_t base_read = db.faulty()->reads();
  db.faulty()->TransientFailNthRead(base_read + 1);
  db.faulty()->TransientFailNthRead(base_read + 3);
  db.faulty()->TransientFailNthRead(base_read + 6);
  IoStats before = db.pool()->stats();
  for (int i = 0; i < kPages; ++i) {
    ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(ids[i]));
    PageGuard g(db.pool(), p);
    EXPECT_EQ(p->data()[0], static_cast<char>(0x30 + i));
  }
  IoStats delta = db.pool()->stats() - before;
  // The invariant the fix restored: every logical fetch is exactly one hit
  // or one miss, no matter how many physical attempts it took.
  EXPECT_EQ(delta.buffer_misses, static_cast<uint64_t>(kPages));
  EXPECT_EQ(delta.buffer_hits, 0u);
  EXPECT_EQ(delta.total_page_accesses(), static_cast<uint64_t>(kPages));
  EXPECT_GE(delta.io_retries, 3u);  // the retries are visible, separately
  // Refetching everything is pure hits: the equation stays balanced.
  before = db.pool()->stats();
  for (int i = 0; i < kPages; ++i) {
    ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(ids[i]));
    PageGuard g(db.pool(), p);
  }
  delta = db.pool()->stats() - before;
  EXPECT_EQ(delta.buffer_hits, static_cast<uint64_t>(kPages));
  EXPECT_EQ(delta.buffer_misses, 0u);
}

TEST(FaultInjectionTest, ReadBatchFaultMatrixFailsSlotsIndependently) {
  FaultyDb db;
  constexpr size_t kSlots = 6;
  PageId ids[kSlots];
  char want[kSlots][kPageSize];
  for (size_t i = 0; i < kSlots; ++i) {
    ids[i] = db.faulty()->AllocatePage();
    std::memset(want[i], static_cast<char>(0x60 + i), kPageSize);
    ASSERT_OK(db.faulty()->WritePage(ids[i], want[i]));
  }
  // Slot 1 hard-fails, slot 3 fails transiently; each slot rolls its own
  // dice, so the other four must come back intact.
  uint64_t base_read = db.faulty()->reads();
  db.faulty()->FailNthRead(base_read + 2);
  db.faulty()->TransientFailNthRead(base_read + 4);
  std::vector<char> bufs(kSlots * kPageSize);
  PageReadRequest requests[kSlots];
  for (size_t i = 0; i < kSlots; ++i) {
    requests[i].page_id = ids[i];
    requests[i].out = bufs.data() + i * kPageSize;
  }
  db.faulty()->ReadBatch(requests, kSlots);
  for (size_t i = 0; i < kSlots; ++i) {
    if (i == 1) {
      EXPECT_TRUE(requests[i].status.IsIoError());
      EXPECT_FALSE(requests[i].status.IsRetryable());
    } else if (i == 3) {
      EXPECT_TRUE(requests[i].status.IsIoError());
      EXPECT_TRUE(requests[i].status.IsRetryable())
          << requests[i].status.ToString();
    } else {
      ASSERT_TRUE(requests[i].status.ok())
          << "slot " << i << ": " << requests[i].status.ToString();
      EXPECT_EQ(std::memcmp(requests[i].out, want[i], kPageSize), 0)
          << "slot " << i;
    }
  }
  EXPECT_EQ(db.faulty()->faults_injected(), 2u);
}

TEST(FaultToleranceTest, FailedDemandReadLeavesFrameCleanForPrefetch) {
  BufferPoolOptions options;
  options.pool_size = 8;
  options.io_retry.max_retries = 0;
  FaultyDb db(options);
  PageId broken = WriteAndEvictPatternPage(db.pool(), 0x44);
  PageId healthy = WriteAndEvictPatternPage(db.pool(), 0x45);
  db.faulty()->TransientFailNthRead(db.faulty()->reads() + 1);
  ASSERT_FALSE(db.pool()->FetchPage(broken).ok());
  // The failed fetch Reset() its frame back to the free list. Prefetching
  // another page may reuse that exact frame; provenance must start clean so
  // the accounting resolves to exactly one prefetch_hit (the free-list pop
  // asserts the invariant in debug builds).
  IoStats before = db.pool()->stats();
  ASSERT_OK(db.pool()->PrefetchPages(std::vector<PageId>{healthy}));
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->FetchPage(healthy));
  PageGuard g(db.pool(), p);
  EXPECT_EQ(p->data()[0], 0x45);
  IoStats delta = db.pool()->stats() - before;
  EXPECT_EQ(delta.prefetch_issued, 1u);
  EXPECT_EQ(delta.prefetch_hits, 1u);
  EXPECT_EQ(delta.prefetch_wasted, 0u);
}

// ---------------------------------------------------------------------------
// Failed-unpin accounting (PageGuard::Release no longer swallows errors)
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, FailedUnpinIsCounted) {
#ifdef NDEBUG
  TempDb db(4);
  ASSERT_OK_AND_ASSIGN(Page * p, db.pool()->NewPage());
  PageGuard guard(db.pool(), p);
  // Sabotage: unpin behind the guard's back so its release fails.
  ASSERT_OK(db.pool()->UnpinPage(p->page_id(), false));
  guard.Release();
  EXPECT_EQ(db.pool()->stats().failed_unpins, 1u);
#else
  GTEST_SKIP() << "failed unpins abort debug builds by design";
#endif
}

}  // namespace
}  // namespace xrtree
