// Crash-consistency harness: run real workloads against a fault-injecting
// disk that loses power (optionally tearing the in-flight write) at a
// seed-chosen point, then "reboot" — reopen the file with a fresh
// DiskManager and BufferPool — and hold the reopened database to the
// detect-or-correct contract:
//
//   * any layer may report an error (clean detection), but
//   * if every layer reports success, query results must equal the
//     in-memory truth — a silently-wrong answer fails the test.
//
// Databases opened WITHOUT a WAL are held to detect-or-correct; databases
// opened WITH one are held to the stronger exact-recovery contract: every
// schedule must come back as precisely the last durably committed state —
// no Corruption, no lost commits, no torn pages.
//
// Seven workload kinds (three raw, four WAL-backed) × a seed count tunable
// via XR_CRASH_SEEDS_PER_KIND (default 36, i.e. 216 schedules) give the
// randomized sweep, plus directed torn-catalog-slot tests and a
// flipped-byte sweep over every page of a built database.

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "join/element_source.h"
#include "join/xr_stack.h"
#include "storage/buffer_pool.h"
#include "storage/catalog.h"
#include "storage/disk_manager.h"
#include "storage/fault_injection.h"
#include "storage/wal.h"
#include "tests/test_util.h"
#include "xrtree/xrtree.h"

namespace xrtree {
namespace {

constexpr uint32_t kElementsPerSet = 200;
constexpr size_t kRunPoolPages = 16;  // small: forces mid-run evictions

// Per-operation-commit WAL workloads fsync once per mutation; keep them
// smaller than the bulk sets so the sweep stays fast.
constexpr uint32_t kWalMutationOps = 80;

/// Seeds per workload kind. CI's release job raises this via
/// XR_CRASH_SEEDS_PER_KIND for a wider sweep; the default keeps the
/// seven kinds above 200 schedules total.
uint64_t SeedsPerKind() {
  static const uint64_t cached = [] {
    if (const char* env = std::getenv("XR_CRASH_SEEDS_PER_KIND")) {
      const long parsed = std::atol(env);
      if (parsed > 0) return static_cast<uint64_t>(parsed);
    }
    return uint64_t{36};
  }();
  return cached;
}

/// Options for the insert-driven workload: tiny fanouts force a deep tree
/// and multi-page stab chains, so the crash point lands inside interesting
/// structure. Must match between build and reopen.
XrTreeOptions InsertTreeOptions() {
  XrTreeOptions opts;
  opts.leaf_capacity = 8;
  opts.internal_capacity = 8;
  return opts;
}

/// In-memory truth for one database: two element sets drawn from ONE
/// region-encoded document (so regions nest or are disjoint, as every join
/// algorithm assumes), plus the expected ancestor-descendant pair count.
struct Truth {
  ElementList a, d;
  uint64_t pairs = 0;
};

Truth MakeTruth(uint64_t seed) {
  Truth t;
  ElementList all = RandomNestedElements(seed, 2 * kElementsPerSet, 3);
  for (size_t i = 0; i < all.size(); ++i) {
    (i % 2 == 0 ? t.a : t.d).push_back(all[i]);
  }
  for (const Element& x : t.a) {
    for (const Element& y : t.d) {
      if (x.Contains(y)) ++t.pairs;
    }
  }
  return t;
}

bool SameElements(const ElementList& got, const ElementList& want) {
  if (got.size() != want.size()) return false;
  for (size_t i = 0; i < got.size(); ++i) {
    if (got[i].start != want[i].start || got[i].end != want[i].end ||
        got[i].id != want[i].id) {
      return false;
    }
  }
  return true;
}

/// A disposable database stack whose disk is wrapped in a
/// FaultInjectingDisk. Unlike TempDb, teardown tolerates a "crashed" disk.
class CrashDb {
 public:
  explicit CrashDb(size_t pool_pages) {
    char tmpl[] = "/tmp/xrtree_crash_XXXXXX";
    int fd = ::mkstemp(tmpl);
    if (fd >= 0) ::close(fd);
    path_ = tmpl;
    XR_CHECK_OK(disk_.Open(path_));
    faulty_ = std::make_unique<FaultInjectingDisk>(&disk_);
    pool_ = std::make_unique<BufferPool>(faulty_.get(), pool_pages);
  }

  ~CrashDb() {
    PowerOff();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  /// Drops the pool and closes the file without flushing anything the
  /// crashed disk would accept anyway. Call before Reboot().
  void PowerOff() {
    pool_.reset();
    faulty_.reset();
    disk_.Close().ok();
  }

  BufferPool* pool() { return pool_.get(); }
  FaultInjectingDisk* faulty() { return faulty_.get(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  DiskManager disk_;
  std::unique_ptr<FaultInjectingDisk> faulty_;
  std::unique_ptr<BufferPool> pool_;
};

// ---------------------------------------------------------------------------
// Workloads. Statuses are deliberately tolerated, not asserted: once the
// injected crash fires the disk reports success while dropping writes, and
// read-back of a torn page may surface Corruption mid-run. Either way the
// process is about to "lose power"; what matters is the reopened state.
// ---------------------------------------------------------------------------

/// Builds both sets in all three representations, registers them, saves the
/// catalog and flushes. The common bulk-load path.
void RunBulkLoadWorkload(BufferPool* pool, const Truth& truth) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  StoredElementSet a(pool, "A");
  if (!a.Build(truth.a).ok()) return;
  StoredElementSet d(pool, "D");
  if (!d.Build(truth.d).ok()) return;
  if (!a.Register(&catalog).ok()) return;
  if (!d.Register(&catalog).ok()) return;
  if (!catalog.Save().ok()) return;
  pool->FlushAll().ok();
  pool->disk()->Sync().ok();
}

/// Grows an XR-tree one Insert at a time (splits, stab-list pushes and
/// ps-directory updates all happen under fire) and registers it as an
/// xrtree-only catalog entry.
void RunInsertWorkload(BufferPool* pool, const Truth& truth) {
  XrTree tree(pool, kInvalidPageId, InsertTreeOptions());
  for (const Element& e : truth.a) {
    if (!tree.Insert(e).ok()) return;
  }
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  CatalogEntry entry;
  entry.name = "INS";
  entry.element_count = truth.a.size();
  entry.xrtree_root = tree.root();
  if (!catalog.Put(entry).ok()) return;
  if (!catalog.Save().ok()) return;
  pool->FlushAll().ok();
  pool->disk()->Sync().ok();
}

/// Phase 1 of the checkpointed workload: set "A" is built, registered,
/// flushed and synced before any fault is armed, so it must survive
/// whatever happens to phase 2. Returns false if the checkpoint failed
/// (a test bug, not an injected fault).
bool RunCheckpointPhase(BufferPool* pool, const Truth& truth) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return false;
  StoredElementSet a(pool, "A");
  if (!a.Build(truth.a).ok()) return false;
  if (!a.Register(&catalog).ok()) return false;
  if (!catalog.Save().ok()) return false;
  if (!pool->FlushAll().ok()) return false;
  return pool->disk()->Sync().ok();
}

/// Phase 2: build and register set "D" with faults armed.
void RunPostCheckpointPhase(BufferPool* pool, const Truth& truth) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  StoredElementSet d(pool, "D");
  if (!d.Build(truth.d).ok()) return;
  if (!d.Register(&catalog).ok()) return;
  if (!catalog.Save().ok()) return;
  pool->FlushAll().ok();
  pool->disk()->Sync().ok();
}

// ---------------------------------------------------------------------------
// Post-reboot validation.
// ---------------------------------------------------------------------------

enum class SetState {
  kAbsent,    ///< no catalog entry — the crash predates registration
  kDetected,  ///< some layer reported an error: clean detection
  kValid,     ///< opened, passed every check, and matched the truth
};

const char* Name(SetState s) {
  switch (s) {
    case SetState::kAbsent: return "absent";
    case SetState::kDetected: return "detected";
    case SetState::kValid: return "valid";
  }
  return "?";
}

/// Universal query region strictly containing every encoded element.
Element UniversalRegion() {
  return Element(0, std::numeric_limits<Position>::max(), 0, 0);
}

/// Validates one fully-materialized set. Emits a test failure on any
/// silently-wrong result; otherwise classifies the outcome.
SetState ValidateFullSet(BufferPool* pool, const Catalog& catalog,
                         const std::string& name, const ElementList& truth,
                         std::string* why) {
  auto entry = catalog.Get(name);
  if (!entry.ok()) return SetState::kAbsent;
  auto opened = StoredElementSet::Open(pool, catalog, name);
  if (!opened.ok()) return *why = opened.status().ToString(), SetState::kDetected;
  StoredElementSet& set = opened.value();
  Status check = set.xrtree().CheckConsistency();
  if (!check.ok()) return *why = check.ToString(), SetState::kDetected;
  auto from_file = set.file().ReadAll();
  if (!from_file.ok()) {
    return *why = from_file.status().ToString(), SetState::kDetected;
  }
  auto from_tree = set.xrtree().FindDescendants(UniversalRegion());
  if (!from_tree.ok()) {
    return *why = from_tree.status().ToString(), SetState::kDetected;
  }
  // Every layer reported success: the answers must now be the truth.
  EXPECT_TRUE(SameElements(from_file.value(), truth))
      << "set '" << name << "': file scan silently wrong after crash";
  EXPECT_TRUE(SameElements(from_tree.value(), truth))
      << "set '" << name << "': XR-tree scan silently wrong after crash";
  return SetState::kValid;
}

/// Validates the xrtree-only "INS" entry the insert workload produces,
/// applying the same count cross-check StoredElementSet::Open performs.
SetState ValidateInsertSet(BufferPool* pool, const Catalog& catalog,
                           const ElementList& truth, std::string* why) {
  auto entry = catalog.Get("INS");
  if (!entry.ok()) return SetState::kAbsent;
  XrTree tree(pool, entry.value().xrtree_root, InsertTreeOptions());
  // Count first: it restores the in-memory size CheckConsistency audits.
  auto count = tree.CountEntries();
  if (!count.ok()) return *why = count.status().ToString(), SetState::kDetected;
  if (count.value() != entry.value().element_count) {
    return *why = "entry count cross-check failed", SetState::kDetected;
  }
  Status check = tree.CheckConsistency();
  if (!check.ok()) return *why = check.ToString(), SetState::kDetected;
  auto scanned = tree.FindDescendants(UniversalRegion());
  if (!scanned.ok()) {
    return *why = scanned.status().ToString(), SetState::kDetected;
  }
  EXPECT_TRUE(SameElements(scanned.value(), truth))
      << "insert-built XR-tree silently wrong after crash";
  return SetState::kValid;
}

/// Reopens `path` cold and validates workload `kind` against `truth`.
/// Returns a human-readable outcome for the sweep log.
std::string ValidateReopened(const std::string& path, int kind,
                             const Truth& truth, uint64_t* fully_valid,
                             bool checkpointed) {
  DiskManager disk;
  XR_CHECK_OK(disk.Open(path));
  BufferPool pool(&disk, 256);
  Catalog catalog(&pool);
  Status load = catalog.Load();
  if (!load.ok()) {
    disk.Close().ok();
    return "catalog: " + load.ToString();
  }
  std::string outcome;
  std::string why;
  switch (kind) {
    case 0: {
      SetState a = ValidateFullSet(&pool, catalog, "A", truth.a, &why);
      SetState d = ValidateFullSet(&pool, catalog, "D", truth.d, &why);
      if (a == SetState::kValid && d == SetState::kValid) {
        auto open_a = StoredElementSet::Open(&pool, catalog, "A");
        auto open_d = StoredElementSet::Open(&pool, catalog, "D");
        EXPECT_TRUE(open_a.ok() && open_d.ok());
        if (open_a.ok() && open_d.ok()) {
          auto join = XrStackJoin(open_a.value().xrtree(),
                                  open_d.value().xrtree());
          EXPECT_TRUE(join.ok());
          if (join.ok()) {
            EXPECT_EQ(join.value().stats.output_pairs, truth.pairs)
                << "join over reopened db silently wrong after crash";
          }
        }
        ++*fully_valid;
      }
      outcome = std::string("A=") + Name(a) + " D=" + Name(d);
      break;
    }
    case 1: {
      SetState s = ValidateInsertSet(&pool, catalog, truth.a, &why);
      if (s == SetState::kValid) ++*fully_valid;
      outcome = std::string("INS=") + Name(s);
      break;
    }
    case 2: {
      SetState a = ValidateFullSet(&pool, catalog, "A", truth.a, &why);
      // The checkpoint was flushed and synced before any fault was armed:
      // once the catalog loads, set A must be fully intact — anything else
      // means the crash destroyed durable data.
      if (checkpointed) {
        EXPECT_EQ(a, SetState::kValid)
            << "checkpointed set damaged by a post-checkpoint crash: " << why;
      }
      SetState d = ValidateFullSet(&pool, catalog, "D", truth.d, &why);
      if (a == SetState::kValid) ++*fully_valid;
      outcome = std::string("A=") + Name(a) + " D=" + Name(d);
      break;
    }
  }
  disk.Close().ok();
  if (!why.empty()) outcome += " (" + why + ")";
  return outcome;
}

/// Runs workload `kind` against a faulty disk. When `plan` is null the run
/// is fault-free (used both to measure the write count and as the control
/// run that must come back fully valid). Returns the number of physical
/// writes the faulted span issued.
uint64_t RunWorkload(CrashDb* db, int kind, const Truth& truth,
                     const FaultPlan* plan) {
  if (kind == 2) {
    // The checkpoint runs before any fault is armed; failure is a test bug.
    bool checkpoint_ok = RunCheckpointPhase(db->pool(), truth);
    EXPECT_TRUE(checkpoint_ok) << "checkpoint phase failed fault-free";
    if (!checkpoint_ok) return 0;
    db->faulty()->SetPlan(plan ? *plan : FaultPlan{});  // resets op counters
    RunPostCheckpointPhase(db->pool(), truth);
  } else {
    if (plan) db->faulty()->SetPlan(*plan);
    if (kind == 0) RunBulkLoadWorkload(db->pool(), truth);
    if (kind == 1) RunInsertWorkload(db->pool(), truth);
  }
  return db->faulty()->writes();
}

class CrashSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(CrashSweepTest, RandomCrashSchedulesNeverGoSilentlyWrong) {
  const int kind = GetParam();
  const Truth truth = MakeTruth(1000 + kind);

  // Fault-free control: measures the write count for this kind and checks
  // the workload itself round-trips (checksums on, every layer green).
  uint64_t max_write_op = 0;
  {
    CrashDb db(kRunPoolPages);
    max_write_op = RunWorkload(&db, kind, truth, nullptr);
    ASSERT_GT(max_write_op, 0u);
    db.PowerOff();
    uint64_t fully_valid = 0;
    std::string outcome = ValidateReopened(db.path(), kind, truth,
                                           &fully_valid, kind == 2);
    EXPECT_EQ(fully_valid, 1u) << "fault-free run not valid: " << outcome;
  }

  uint64_t detected = 0, valid = 0, absent_like = 0;
  for (uint64_t seed = 1; seed <= SeedsPerKind(); ++seed) {
    SCOPED_TRACE("kind=" + std::to_string(kind) +
                 " seed=" + std::to_string(seed));
    FaultPlan plan =
        FaultPlan::RandomCrashPlan(seed * 7919 + kind, max_write_op);
    CrashDb db(kRunPoolPages);
    RunWorkload(&db, kind, truth, &plan);
    EXPECT_TRUE(db.faulty()->crashed()) << "crash plan never fired";
    db.PowerOff();
    uint64_t fully_valid = 0;
    std::string outcome =
        ValidateReopened(db.path(), kind, truth, &fully_valid, kind == 2);
    if (fully_valid > 0) {
      ++valid;
    } else if (outcome.find("absent") != std::string::npos &&
               outcome.find("detected") == std::string::npos &&
               outcome.find("catalog") == std::string::npos) {
      ++absent_like;  // crash predates registration: an honest empty db
    } else {
      ++detected;
    }
  }
  // Every schedule must land in one of the three clean buckets (silent
  // wrongness already failed above via EXPECT).
  EXPECT_EQ(detected + valid + absent_like, SeedsPerKind());
  if (kind == 2) {
    // The ordered ping-pong catalog save guarantees the catalog always
    // loads and the pre-fault checkpoint always survives: every schedule
    // must validate set A in full, not merely most of them.
    EXPECT_EQ(valid, SeedsPerKind()) << "a post-checkpoint crash damaged "
                                        "durable data or the catalog";
  } else {
    // For the uncheckpointed kinds the split is seed-dependent, but the
    // sweep must exercise the detection/absent path at least once.
    EXPECT_GT(detected + absent_like, 0u) << "no schedule crashed early enough";
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, CrashSweepTest,
                         ::testing::Values(0, 1, 2));

// ---------------------------------------------------------------------------
// WAL-mode sweeps. With a write-ahead log attached the contract tightens
// from detect-or-correct to exact recovery: after ANY crash schedule the
// reopened database must equal precisely the last durably committed state.
// Faults land on both the data file (torn/dropped checkpoint writes,
// including the catalog slot pages) and the log itself (torn or dropped
// appends — image payloads and commit records alike).
// ---------------------------------------------------------------------------

/// A CrashDb with a WAL layered on top: the log file is wrapped in a
/// FaultInjectingWalFile sharing the data disk's power state, so one power
/// event freezes both files at the same instant. The checkpoint threshold
/// is tiny so checkpoints run under fire mid-workload.
class WalCrashDb {
 public:
  explicit WalCrashDb(size_t pool_pages) {
    char tmpl[] = "/tmp/xrtree_walcrash_XXXXXX";
    int fd = ::mkstemp(tmpl);
    if (fd >= 0) ::close(fd);
    path_ = tmpl;
    XR_CHECK_OK(disk_.Open(path_));
    faulty_ = std::make_unique<FaultInjectingDisk>(&disk_);
    XR_CHECK_OK(wal_file_.Open(Wal::SidecarPath(path_)));
    faulty_wal_ =
        std::make_unique<FaultInjectingWalFile>(&wal_file_, faulty_->power());
    WalOptions opts;
    opts.checkpoint_threshold_bytes = 8 << 10;
    XR_CHECK_OK(wal_.Attach(faulty_wal_.get(), opts));
    XR_CHECK_OK(wal_.Recover(faulty_.get()));
    pool_ = std::make_unique<BufferPool>(faulty_.get(), pool_pages);
    pool_->SetWal(&wal_);
  }

  ~WalCrashDb() {
    PowerOff();
    if (!path_.empty()) {
      std::remove(Wal::SidecarPath(path_).c_str());
      std::remove(path_.c_str());
    }
  }

  /// Tears down the whole stack without flushing anything the crashed
  /// files would accept anyway. Call before reopening for validation.
  void PowerOff() {
    if (powered_off_) return;
    powered_off_ = true;
    pool_.reset();
    wal_.Close().ok();
    faulty_wal_.reset();
    wal_file_.Close().ok();
    faulty_.reset();
    disk_.Close().ok();
  }

  BufferPool* pool() { return pool_.get(); }
  FaultInjectingDisk* faulty() { return faulty_.get(); }
  FaultInjectingWalFile* faulty_wal() { return faulty_wal_.get(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  DiskManager disk_;
  std::unique_ptr<FaultInjectingDisk> faulty_;
  PosixWalFile wal_file_;
  std::unique_ptr<FaultInjectingWalFile> faulty_wal_;
  Wal wal_;
  std::unique_ptr<BufferPool> pool_;
  bool powered_off_ = false;
};

/// Truth for the WAL kinds. The bulk set is much larger than the raw
/// sweep's: default fanouts pack ~400 elements into fewer pages than the
/// pool holds, and the build must overflow the pool so uncommitted images
/// are read back through the log overlay under fire. The
/// per-operation-commit kinds mutate one small set with tiny fanouts.
Truth MakeWalTruth(int kind) {
  Truth t;
  if (kind == 0) {
    ElementList all = RandomNestedElements(2000, 3000, 3);
    for (size_t i = 0; i < all.size(); ++i) {
      (i % 2 == 0 ? t.a : t.d).push_back(all[i]);
    }
  } else if (kind == 3) {
    // Compressed-page kind: a bulk base that lands on compressed leaves
    // plus an interleaved churn set whose inserts each hit a compressed
    // page and go through decompress-on-write (every page image crossing
    // the WAL is a physical redo of that transition).
    ElementList all = RandomNestedElements(2003, 360 + kWalMutationOps, 3);
    for (size_t i = 0; i < all.size(); ++i) {
      if (i % 4 == 1 && t.d.size() < kWalMutationOps) {
        t.d.push_back(all[i]);
      } else {
        t.a.push_back(all[i]);
      }
    }
  } else {
    t.a = RandomNestedElements(2000 + static_cast<uint64_t>(kind),
                               kWalMutationOps, 3);
  }
  return t;
}

/// Kind 0: bulk-builds both sets and commits once at the end. The whole
/// load is one logical update: after a crash either both sets exist in
/// full or neither does.
void RunWalBulkWorkload(BufferPool* pool, FaultInjectingDisk* faulty,
                        const Truth& truth, uint64_t* durable_commits) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  StoredElementSet a(pool, "A");
  if (!a.Build(truth.a).ok()) return;
  StoredElementSet d(pool, "D");
  if (!d.Build(truth.d).ok()) return;
  if (!a.Register(&catalog).ok()) return;
  if (!d.Register(&catalog).ok()) return;
  if (!catalog.Save().ok()) return;
  if (pool->Commit().ok() && !faulty->crashed()) *durable_commits = 1;
}

/// Kind 1: one commit per Insert — tree mutation, catalog update, Save,
/// Commit. `durable_commits` counts commits that returned with power still
/// on; a commit racing the power loss may or may not have become durable,
/// so recovery is held to "at least" the durable count.
void RunWalInsertWorkload(BufferPool* pool, FaultInjectingDisk* faulty,
                          const Truth& truth, uint64_t* durable_commits) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  XrTree tree(pool, kInvalidPageId, InsertTreeOptions());
  for (size_t i = 0; i < truth.a.size(); ++i) {
    if (!tree.Insert(truth.a[i]).ok()) return;
    CatalogEntry entry;
    entry.name = "INS";
    entry.element_count = i + 1;
    entry.xrtree_root = tree.root();
    if (!catalog.Put(entry).ok()) return;
    if (!catalog.Save().ok()) return;
    if (!pool->Commit().ok()) return;
    if (!faulty->crashed()) *durable_commits = *durable_commits + 1;
  }
}

/// Kind 2: builds the whole set (commit), then deletes front-to-back with
/// one commit per Delete, draining the tree to empty. Commit j=1 is the
/// build; commit j=1+i leaves the suffix truth.a[i..].
void RunWalDeleteWorkload(BufferPool* pool, FaultInjectingDisk* faulty,
                          const Truth& truth, uint64_t* durable_commits) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  XrTree tree(pool, kInvalidPageId, InsertTreeOptions());
  for (const Element& e : truth.a) {
    if (!tree.Insert(e).ok()) return;
  }
  const uint64_t n = truth.a.size();
  for (size_t i = 0; i <= n; ++i) {
    if (i > 0 && !tree.Delete(truth.a[i - 1].start).ok()) return;
    CatalogEntry entry;
    entry.name = "INS";
    entry.element_count = n - i;
    entry.xrtree_root = tree.root();
    if (!catalog.Put(entry).ok()) return;
    if (!catalog.Save().ok()) return;
    if (!pool->Commit().ok()) return;
    if (!faulty->crashed()) *durable_commits = *durable_commits + 1;
  }
}

/// Kind 3: bulk-loads the base set onto compressed leaf/stab pages
/// (commit 1), then inserts the churn set with one commit per Insert. The
/// first insert landing on each compressed leaf decompresses it in place
/// under the page W-latch, so the sweep tears WAL records and checkpoint
/// writes across format transitions. Commit 1+i holds base + churn[0..i).
void RunWalCompressedWorkload(BufferPool* pool, FaultInjectingDisk* faulty,
                              const Truth& truth, uint64_t* durable_commits) {
  Catalog catalog(pool);
  if (!catalog.Load().ok()) return;
  XrTreeOptions opts = InsertTreeOptions();
  opts.compressed_pages = true;
  XrTree tree(pool, kInvalidPageId, opts);
  if (!tree.BulkLoad(truth.a).ok()) return;
  const uint64_t n0 = truth.a.size();
  for (size_t i = 0; i <= truth.d.size(); ++i) {
    if (i > 0 && !tree.Insert(truth.d[i - 1]).ok()) return;
    CatalogEntry entry;
    entry.name = "CMP";
    entry.element_count = n0 + i;
    entry.xrtree_root = tree.root();
    if (!catalog.Put(entry).ok()) return;
    if (!catalog.Save().ok()) return;
    if (!pool->Commit().ok()) return;
    if (!faulty->crashed()) *durable_commits = *durable_commits + 1;
  }
}

void RunWalWorkload(WalCrashDb* db, int kind, const Truth& truth,
                    uint64_t* durable_commits) {
  switch (kind) {
    case 0:
      RunWalBulkWorkload(db->pool(), db->faulty(), truth, durable_commits);
      break;
    case 1:
      RunWalInsertWorkload(db->pool(), db->faulty(), truth, durable_commits);
      break;
    case 2:
      RunWalDeleteWorkload(db->pool(), db->faulty(), truth, durable_commits);
      break;
    case 3:
      RunWalCompressedWorkload(db->pool(), db->faulty(), truth,
                               durable_commits);
      break;
  }
}

/// Arms exactly one power-loss fault at a point chosen uniformly over the
/// combined data-write + log-append op space, so the sweep tears
/// checkpoint writes and log records in proportion to how often each
/// happens. Deterministic in `seed`.
void ArmWalFault(WalCrashDb* db, uint64_t seed, uint64_t data_writes,
                 uint64_t wal_appends) {
  uint64_t x = seed ^ 0x9E3779B97F4A7C15ull;
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x;
  };
  next();
  const uint64_t pick = next() % (data_writes + wal_appends) + 1;
  if (pick <= wal_appends) {
    if (next() % 2 == 0) {
      db->faulty_wal()->DropFromNthAppend(pick);
    } else {
      // An image record is kPageSize + 24 framing bytes; a tear anywhere
      // inside (or a "tear" past the end: full record, then power loss).
      db->faulty_wal()->TearNthAppend(pick, next() % (kPageSize + 64));
    }
  } else {
    db->faulty()->SetPlan(FaultPlan::RandomCrashPlan(next(), data_writes));
  }
}

/// Reopens `path` cold, runs WAL recovery, and holds the result to the
/// exact-recovery contract: the catalog must load (a torn slot write is
/// always repaired from the log), the recovered state must be byte-exact
/// for whichever commit it represents, and that commit must be at least
/// the last one known durable.
void ValidateWalReopened(const std::string& path, int kind, const Truth& truth,
                         uint64_t durable_commits) {
  DiskManager disk;
  XR_CHECK_OK(disk.Open(path));
  Wal wal;
  ASSERT_OK(wal.Open(Wal::SidecarPath(path)));
  ASSERT_OK(wal.Recover(&disk));
  BufferPool pool(&disk, 256);
  pool.SetWal(&wal);
  Catalog catalog(&pool);
  Status load = catalog.Load();
  ASSERT_TRUE(load.ok()) << "WAL-backed catalog must always load: "
                         << load.ToString();

  uint64_t recovered_commit = 0;
  if (kind == 0) {
    auto a = catalog.Get("A");
    auto d = catalog.Get("D");
    EXPECT_EQ(a.ok(), d.ok())
        << "bulk load committed atomically: both sets or neither";
    if (a.ok() && d.ok()) {
      recovered_commit = 1;
      std::string why;
      EXPECT_EQ(ValidateFullSet(&pool, catalog, "A", truth.a, &why),
                SetState::kValid)
          << why;
      why.clear();
      EXPECT_EQ(ValidateFullSet(&pool, catalog, "D", truth.d, &why),
                SetState::kValid)
          << why;
    }
  } else if (kind == 3) {
    const uint64_t n0 = truth.a.size();
    const uint64_t n = n0 + truth.d.size();
    auto entry = catalog.Get("CMP");
    if (entry.ok()) {
      const uint64_t k = entry.value().element_count;
      ASSERT_GE(k, n0) << "recovered count below the bulk commit";
      ASSERT_LE(k, n) << "recovered count exceeds every committed state";
      recovered_commit = 1 + (k - n0);
      ElementList expect = truth.a;
      expect.insert(expect.end(), truth.d.begin(),
                    truth.d.begin() + static_cast<size_t>(k - n0));
      std::sort(expect.begin(), expect.end());  // back into document order
      XrTree tree(&pool, entry.value().xrtree_root, InsertTreeOptions());
      auto count = tree.CountEntries();
      ASSERT_OK(count.status());
      EXPECT_EQ(count.value(), k) << "entry count cross-check failed";
      EXPECT_OK(tree.CheckConsistency());
      auto scanned = tree.FindDescendants(UniversalRegion());
      ASSERT_OK(scanned.status());
      EXPECT_TRUE(SameElements(scanned.value(), expect))
          << "recovered compressed tree is not the committed state (count="
          << k << ")";
    }
  } else {
    const uint64_t n = truth.a.size();
    auto entry = catalog.Get("INS");
    if (entry.ok()) {
      const uint64_t k = entry.value().element_count;
      ASSERT_LE(k, n) << "recovered count exceeds every committed state";
      // Map the recovered count back to a commit index (kind 1 counts up
      // from 1; kind 2's build commit holds n, then counts down).
      recovered_commit = (kind == 1) ? k : 1 + (n - k);
      ElementList expect(kind == 1 ? truth.a.begin() : truth.a.end() - k,
                         kind == 1 ? truth.a.begin() + k : truth.a.end());
      XrTree tree(&pool, entry.value().xrtree_root, InsertTreeOptions());
      auto count = tree.CountEntries();
      ASSERT_OK(count.status());
      EXPECT_EQ(count.value(), k) << "entry count cross-check failed";
      EXPECT_OK(tree.CheckConsistency());
      auto scanned = tree.FindDescendants(UniversalRegion());
      ASSERT_OK(scanned.status());
      EXPECT_TRUE(SameElements(scanned.value(), expect))
          << "recovered tree is not the committed prefix/suffix (count=" << k
          << ")";
    }
  }
  EXPECT_GE(recovered_commit, durable_commits)
      << "recovery lost a durably committed state";
  wal.Close().ok();
  disk.Close().ok();
}

class WalCrashSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(WalCrashSweepTest, EveryScheduleRecoversTheExactCommittedState) {
  const int kind = GetParam();
  const Truth truth = MakeWalTruth(kind);

  // Fault-free control: measures both op spaces and checks the workload
  // round-trips exactly (durable == total commits, so GE pins equality).
  uint64_t data_writes = 0, wal_appends = 0;
  {
    WalCrashDb db(kRunPoolPages);
    uint64_t durable = 0;
    RunWalWorkload(&db, kind, truth, &durable);
    data_writes = db.faulty()->writes();
    wal_appends = db.faulty_wal()->appends();
    ASSERT_GT(wal_appends, 0u);
    ASSERT_GT(data_writes, 0u) << "no checkpoint ran; shrink the threshold";
    EXPECT_GT(durable, 0u);
    db.PowerOff();
    ValidateWalReopened(db.path(), kind, truth, durable);
  }

  for (uint64_t seed = 1; seed <= SeedsPerKind(); ++seed) {
    SCOPED_TRACE("wal kind=" + std::to_string(kind) +
                 " seed=" + std::to_string(seed));
    WalCrashDb db(kRunPoolPages);
    ArmWalFault(&db, seed * 104729 + static_cast<uint64_t>(kind), data_writes,
                wal_appends);
    uint64_t durable = 0;
    RunWalWorkload(&db, kind, truth, &durable);
    EXPECT_TRUE(db.faulty()->crashed()) << "fault plan never fired";
    db.PowerOff();
    ValidateWalReopened(db.path(), kind, truth, durable);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWalKinds, WalCrashSweepTest,
                         ::testing::Values(0, 1, 2, 3));

// ---------------------------------------------------------------------------
// Directed torn-catalog-slot tests: aim the tear at the header slot pages
// (0/1) themselves, the single most damaging place a write can tear.
// ---------------------------------------------------------------------------

TEST(DirectedTornCatalogTest, TornSlotWriteFallsBackToPreviousImage) {
  const Truth truth = MakeTruth(7);
  CrashDb db(kRunPoolPages);
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    StoredElementSet a(db.pool(), "A");
    ASSERT_OK(a.Build(truth.a));
    ASSERT_OK(a.Register(&catalog));
    ASSERT_OK(catalog.Save());  // seq 1 -> slot 0
    StoredElementSet d(db.pool(), "D");
    ASSERT_OK(d.Build(truth.d));
    ASSERT_OK(d.Register(&catalog));
    // The second save targets the inactive slot (page 1); tear it partway
    // through the header. Save itself may still report success — the
    // post-tear sync is silently swallowed by the dead disk.
    db.faulty()->TearNextWriteToPage(1, 100);
    catalog.Save().ok();
    EXPECT_TRUE(db.faulty()->crashed());
  }
  db.PowerOff();

  DiskManager disk;
  XR_CHECK_OK(disk.Open(db.path()));
  BufferPool pool(&disk, 256);
  Catalog reopened(&pool);
  ASSERT_OK(reopened.Load());
  EXPECT_EQ(reopened.sequence(), 1u) << "should fall back to the first image";
  std::string why;
  EXPECT_EQ(ValidateFullSet(&pool, reopened, "A", truth.a, &why),
            SetState::kValid)
      << why;
  EXPECT_TRUE(reopened.Get("D").status().IsNotFound())
      << "the torn save must roll back whole";
  XR_CHECK_OK(disk.Close());
}

TEST(DirectedTornCatalogTest, TornFirstEverSlotWriteRecoversAsEmpty) {
  const Truth truth = MakeTruth(8);
  CrashDb db(kRunPoolPages);
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    StoredElementSet a(db.pool(), "A");
    ASSERT_OK(a.Build(truth.a));
    ASSERT_OK(a.Register(&catalog));
    db.faulty()->TearNextWriteToPage(0, 80);  // first save targets slot 0
    catalog.Save().ok();
    EXPECT_TRUE(db.faulty()->crashed());
  }
  db.PowerOff();

  DiskManager disk;
  XR_CHECK_OK(disk.Open(db.path()));
  BufferPool pool(&disk, 256);
  Catalog reopened(&pool);
  Status load = reopened.Load();
  ASSERT_TRUE(load.ok()) << "a torn first save is a crash artifact, not "
                         << "corruption: " << load.ToString();
  EXPECT_EQ(reopened.sequence(), 0u);
  EXPECT_TRUE(reopened.Get("A").status().IsNotFound());
  XR_CHECK_OK(disk.Close());
}

TEST(DirectedTornCatalogTest, WalRepairsSlotTornDuringCheckpoint) {
  const Truth truth = MakeTruth(11);
  WalCrashDb db(kRunPoolPages);
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    StoredElementSet a(db.pool(), "A");
    ASSERT_OK(a.Build(truth.a));
    ASSERT_OK(a.Register(&catalog));
    ASSERT_OK(catalog.Save());
    // In WAL mode slot images reach the data file only through the
    // checkpoint; tear that write after the commit record is durable.
    db.faulty()->TearNextWriteToPage(0, 120);
    db.pool()->Commit().ok();
    EXPECT_TRUE(db.faulty()->crashed())
        << "the commit should have checkpointed and hit the torn slot";
  }
  db.PowerOff();

  DiskManager disk;
  XR_CHECK_OK(disk.Open(db.path()));
  Wal wal;
  ASSERT_OK(wal.Open(Wal::SidecarPath(db.path())));
  ASSERT_OK(wal.Recover(&disk));
  EXPECT_GE(wal.recovered_commits(), 1u);
  BufferPool pool(&disk, 256);
  pool.SetWal(&wal);
  Catalog reopened(&pool);
  ASSERT_OK(reopened.Load());
  std::string why;
  EXPECT_EQ(ValidateFullSet(&pool, reopened, "A", truth.a, &why),
            SetState::kValid)
      << why;
  wal.Close().ok();
  XR_CHECK_OK(disk.Close());
}

// ---------------------------------------------------------------------------
// Flipped-byte sweep: any single corrupted byte in any page of a built
// database must surface as Status::Corruption on fetch.
// ---------------------------------------------------------------------------

TEST(PageIntegrityTest, FlippedByteInAnyPageIsDetectedOnFetch) {
  const Truth truth = MakeTruth(42);
  TempDb db(kRunPoolPages);
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    StoredElementSet a(db.pool(), "A");
    ASSERT_OK(a.Build(truth.a));
    ASSERT_OK(a.Register(&catalog));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
    ASSERT_OK(db.disk()->Sync());
  }

  const PageId num_pages = db.disk()->num_pages();
  ASSERT_GT(num_pages, 1u);
  int fd = ::open(db.path().c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  for (PageId page = 0; page < num_pages; ++page) {
    // Vary the flipped offset so the sweep hits payload and trailer bytes.
    const off_t offset =
        static_cast<off_t>(page) * kPageSize + (page * 997) % kPageSize;
    char byte;
    ASSERT_EQ(::pread(fd, &byte, 1, offset), 1);
    char flipped = byte ^ 0x40;
    ASSERT_EQ(::pwrite(fd, &flipped, 1, offset), 1);

    BufferPool cold(db.disk(), 4);  // fresh pool: no cached clean copy
    auto fetched = cold.FetchPage(page);
    ASSERT_FALSE(fetched.ok()) << "flipped byte in page " << page
                               << " fetched without complaint";
    // No WAL is attached, so the repair pass finds no clean image and the
    // persistent on-disk flip surfaces as DataLoss.
    EXPECT_TRUE(fetched.status().IsDataLoss()) << fetched.status().ToString();

    ASSERT_EQ(::pwrite(fd, &byte, 1, offset), 1);  // restore
  }
  ::close(fd);

  // With every byte restored the database reads back clean.
  BufferPool clean(db.disk(), 64);
  Catalog catalog(&clean);
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(StoredElementSet a,
                       StoredElementSet::Open(&clean, catalog, "A"));
  ASSERT_OK_AND_ASSIGN(ElementList elements, a.file().ReadAll());
  EXPECT_TRUE(SameElements(elements, truth.a));
}

}  // namespace
}  // namespace xrtree
