#include "query/path_executor.h"

#include <algorithm>
#include <set>

#include "join/parallel_join.h"

namespace xrtree {

Result<const XrTree*> PathExecutor::TagIndex(const std::string& tag) {
  auto it = tag_indexes_.find(tag);
  if (it != tag_indexes_.end()) return const_cast<const XrTree*>(it->second.get());
  ElementList elements = corpus_->ElementsWithTag(tag);
  auto tree = std::make_unique<XrTree>(pool_);
  XR_RETURN_IF_ERROR(tree->BulkLoad(elements));
  const XrTree* raw = tree.get();
  tag_indexes_.emplace(tag, std::move(tree));
  return raw;
}

Result<ElementList> PathExecutor::Execute(const PathQuery& query,
                                          PathStats* stats) {
  const auto& steps = query.steps();
  // First step: every element with the tag; a leading single '/' restricts
  // to document roots (level 0).
  ElementList context = corpus_->ElementsWithTag(steps[0].tag);
  if (steps[0].axis == Axis::kChild) {
    ElementList roots;
    for (const Element& e : context) {
      if (e.level == 0) roots.push_back(e);
    }
    context = std::move(roots);
  }
  if (stats) stats->intermediate_results += context.size();

  for (size_t i = 1; i < steps.size(); ++i) {
    if (context.empty()) return ElementList{};
    // Index the current context (ancestors of this step)...
    XrTree context_index(pool_);
    XR_RETURN_IF_ERROR(context_index.BulkLoad(context));
    // ... and join it with the step tag's cached index.
    XR_ASSIGN_OR_RETURN(const XrTree* tag_index, TagIndex(steps[i].tag));
    JoinOptions options = join_options_;
    options.materialize = true;  // the step consumes the pairs
    options.parent_child = (steps[i].axis == Axis::kChild);
    // Queries prefer a slower answer over a failed one: a transient that
    // defeats the parallel workers falls back to the serial join (same
    // bytes, one thread's worth of pool pressure).
    options.degrade_to_serial = true;
    XR_ASSIGN_OR_RETURN(JoinOutput join,
                        ParallelXrStackJoin(context_index, *tag_index,
                                            options));
    if (stats) {
      ++stats->joins;
      stats->elements_scanned += join.stats.elements_scanned;
    }
    // Distinct descendants, document order.
    std::set<Position> seen;
    ElementList next;
    for (const JoinPair& p : join.pairs) {
      if (seen.insert(p.descendant.start).second) {
        next.push_back(p.descendant);
      }
    }
    std::sort(next.begin(), next.end());
    context = std::move(next);
    if (stats) stats->intermediate_results += context.size();
  }
  return context;
}

Result<ElementList> PathExecutor::Execute(std::string_view text,
                                          PathStats* stats) {
  XR_ASSIGN_OR_RETURN(PathQuery query, PathQuery::Parse(text));
  return Execute(query, stats);
}

}  // namespace xrtree
