#ifndef XRTREE_STORAGE_ASYNC_DISK_H_
#define XRTREE_STORAGE_ASYNC_DISK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/disk_interface.h"

namespace xrtree {

/// Tuning knobs for the asynchronous read layer (DESIGN.md §13).
struct AsyncDiskOptions {
  /// Completion worker threads draining the submission queue. Each worker
  /// serves one submission at a time, so up to `workers` reads overlap on a
  /// device that serves independent requests concurrently.
  size_t workers = 8;
  /// Bounded queue depth: submissions beyond this are rejected with a
  /// retryable ResourceExhausted instead of blocking the submitter (the
  /// backpressure contract — a full queue must never deadlock).
  size_t queue_depth = 64;
};

/// io_uring-style submission/completion queue over a DiskInterface: Submit()
/// enqueues a run of PageReadRequest slots and returns immediately; a
/// completion worker performs the read (one base ReadBatch call, so
/// consecutive-id runs still collapse into one device submission) and then
/// invokes the caller's completion function on the worker thread.
///
/// Ownership: the request slots and everything the completion closure
/// touches must stay alive until the completion has run. The BufferPool
/// keeps that contract by parking the submitter on its in-flight entry
/// (demand miss) or on a per-batch pending count (prefetch).
///
/// Thread-safe; Submit never blocks on the device. The destructor drains:
/// every accepted submission completes (read + completion) before the
/// workers are joined.
class AsyncDisk {
 public:
  explicit AsyncDisk(DiskInterface* base, const AsyncDiskOptions& options = {});
  ~AsyncDisk();

  AsyncDisk(const AsyncDisk&) = delete;
  AsyncDisk& operator=(const AsyncDisk&) = delete;

  /// Enqueues `n` request slots as one submission. On acceptance, a worker
  /// will call base->ReadBatch(requests, n) and then `completion()`. A full
  /// queue rejects with retryable ResourceExhausted and runs nothing — the
  /// caller falls back to an inline read (or retries).
  Status Submit(PageReadRequest* requests, size_t n,
                std::function<void()> completion);

  /// Blocks until the queue is empty and no submission is being served.
  void Drain();

  /// Queued-but-unserved plus currently-serving submissions (tests).
  size_t pending() const;

  uint64_t submissions() const {
    return submissions_.load(std::memory_order_relaxed);
  }
  uint64_t rejections() const {
    return rejections_.load(std::memory_order_relaxed);
  }
  const AsyncDiskOptions& options() const { return options_; }

 private:
  struct Op {
    PageReadRequest* requests = nullptr;
    size_t n = 0;
    std::function<void()> completion;
  };

  void WorkerLoop();

  DiskInterface* const base_;
  const AsyncDiskOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // wakes workers
  std::condition_variable drain_cv_;  // wakes Drain()
  std::deque<Op> queue_;              // guarded by mu_
  size_t active_ = 0;                 // submissions being served; mu_
  bool stop_ = false;                 // mu_
  std::vector<std::thread> workers_;  // spawned lazily on first Submit; mu_
  std::atomic<uint64_t> submissions_{0};
  std::atomic<uint64_t> rejections_{0};
};

}  // namespace xrtree

#endif  // XRTREE_STORAGE_ASYNC_DISK_H_
