#include "storage/catalog.h"

#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>

#include "join/element_source.h"
#include "join/xr_stack.h"
#include "tests/test_util.h"

namespace xrtree {
namespace {

TEST(CatalogTest, FreshDatabaseLoadsEmpty) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  EXPECT_EQ(catalog.size(), 0u);
}

TEST(CatalogTest, PutGetRemove) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  CatalogEntry e;
  e.name = "employee";
  e.element_count = 42;
  e.file_head = 7;
  e.btree_root = 9;
  e.xrtree_root = 11;
  ASSERT_OK(catalog.Put(e));
  ASSERT_OK_AND_ASSIGN(CatalogEntry got, catalog.Get("employee"));
  EXPECT_EQ(got.element_count, 42u);
  EXPECT_EQ(got.btree_root, 9u);
  EXPECT_TRUE(catalog.Get("name").status().IsNotFound());
  // Replacement.
  e.element_count = 43;
  ASSERT_OK(catalog.Put(e));
  EXPECT_EQ(catalog.size(), 1u);
  ASSERT_OK_AND_ASSIGN(got, catalog.Get("employee"));
  EXPECT_EQ(got.element_count, 43u);
  ASSERT_OK(catalog.Remove("employee"));
  EXPECT_TRUE(catalog.Remove("employee").IsNotFound());
}

TEST(CatalogTest, RejectsBadNames) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  CatalogEntry e;
  e.name = "";
  EXPECT_TRUE(catalog.Put(e).IsInvalidArgument());
  e.name = std::string(Catalog::kMaxNameLen + 1, 'x');
  EXPECT_TRUE(catalog.Put(e).IsInvalidArgument());
  e.name = std::string(Catalog::kMaxNameLen, 'x');
  EXPECT_OK(catalog.Put(e));
}

TEST(CatalogTest, FillsToCapacity) {
  TempDb db;
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  for (size_t i = 0; i < Catalog::kMaxEntries; ++i) {
    CatalogEntry e;
    e.name = "set" + std::to_string(i);
    ASSERT_OK(catalog.Put(e));
  }
  CatalogEntry overflow;
  overflow.name = "one-too-many";
  EXPECT_TRUE(catalog.Put(overflow).IsInvalidArgument());
  ASSERT_OK(catalog.Save());
  Catalog reloaded(db.pool());
  ASSERT_OK(reloaded.Load());
  EXPECT_EQ(reloaded.size(), Catalog::kMaxEntries);
}

TEST(CatalogTest, PersistsAcrossReopen) {
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "paper";
    e.element_count = 1000;
    e.xrtree_root = 33;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
  }
  db.Reopen();
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(CatalogEntry got, catalog.Get("paper"));
  EXPECT_EQ(got.element_count, 1000u);
  EXPECT_EQ(got.xrtree_root, 33u);
}

TEST(CatalogTest, RejectsCorruptHeader) {
  TempDb db;
  {
    ASSERT_OK_AND_ASSIGN(Page * raw, db.pool()->FetchPage(0));
    PageGuard page(db.pool(), raw);
    page.MarkDirty();
    raw->data()[0] = 'Z';  // garbage magic, nonzero
    raw->data()[8] = 1;    // nonzero count
  }
  Catalog catalog(db.pool());
  EXPECT_TRUE(catalog.Load().IsCorruption());
}

namespace {

/// Overwrites the leading header words of page 0 through the pool so the
/// page still carries a valid integrity trailer — the corruption under
/// test is semantic, not a checksum failure.
void ForgeCatalogHeader(BufferPool* pool, uint32_t magic, uint32_t version,
                        uint32_t count) {
  auto fetched = pool->FetchPage(0);
  ASSERT_OK(fetched.status());
  PageGuard page(pool, fetched.value());
  page.MarkDirty();
  uint32_t words[3] = {magic, version, count};
  std::memcpy(fetched.value()->data(), words, sizeof(words));
}

constexpr uint32_t kForgedMagic = 0x58524354;  // "XRCT"

}  // namespace

TEST(CatalogTest, RejectsUnknownVersion) {
  TempDb db;
  ForgeCatalogHeader(db.pool(), kForgedMagic, /*version=*/99, /*count=*/0);
  Catalog catalog(db.pool());
  Status load = catalog.Load();
  EXPECT_TRUE(load.IsNotSupported()) << load.ToString();
}

TEST(CatalogTest, RejectsEntryCountOutOfRange) {
  TempDb db;
  ForgeCatalogHeader(db.pool(), kForgedMagic, /*version=*/1,
                     /*count=*/Catalog::kMaxEntries + 1);
  Catalog catalog(db.pool());
  Status load = catalog.Load();
  EXPECT_TRUE(load.IsCorruption()) << load.ToString();
}

TEST(CatalogTest, DetectsTruncatedHeaderPage) {
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "survivor";
    e.element_count = 5;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
  }
  // Chop the file mid-header-page: the read path zero-fills the missing
  // tail, which strips the trailer off a nonzero payload.
  ASSERT_EQ(::truncate(db.path().c_str(), kPageSize / 2), 0);
  DiskManager fresh;
  ASSERT_OK(fresh.Open(db.path()));
  BufferPool pool(&fresh, 8);
  Catalog catalog(&pool);
  Status load = catalog.Load();
  EXPECT_TRUE(load.IsCorruption()) << load.ToString();
  ASSERT_OK(fresh.Close());
}

TEST(CatalogTest, RoundTripsThroughFreshDiskManager) {
  // Unlike PersistsAcrossReopen (which reuses the TempDb stack), this goes
  // through a wholly separate DiskManager + BufferPool, as a second
  // process opening the database would.
  TempDb db;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    CatalogEntry e;
    e.name = "icde2003";
    e.element_count = 77;
    e.file_head = 3;
    e.btree_root = 5;
    e.xrtree_root = 8;
    ASSERT_OK(catalog.Put(e));
    ASSERT_OK(catalog.Save());
    ASSERT_OK(db.pool()->FlushAll());
    ASSERT_OK(db.disk()->Sync());
  }
  DiskManager fresh;
  ASSERT_OK(fresh.Open(db.path()));
  BufferPool pool(&fresh, 8);
  Catalog catalog(&pool);
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(CatalogEntry got, catalog.Get("icde2003"));
  EXPECT_EQ(got.element_count, 77u);
  EXPECT_EQ(got.file_head, 3u);
  EXPECT_EQ(got.btree_root, 5u);
  EXPECT_EQ(got.xrtree_root, 8u);
  ASSERT_OK(fresh.Close());
}

TEST(CatalogTest, EndToEndStoredSetRoundTrip) {
  // Build + register two element sets, "restart", reopen via the catalog
  // and re-run the join with identical results.
  TempDb db(512);
  ElementList universe = RandomNestedElements(3, 800);
  ElementList a_list, d_list;
  for (const Element& e : universe) {
    (e.level % 2 == 0 ? a_list : d_list).push_back(e);
  }
  uint64_t expected_pairs;
  {
    Catalog catalog(db.pool());
    ASSERT_OK(catalog.Load());
    StoredElementSet a_set(db.pool(), "A");
    StoredElementSet d_set(db.pool(), "D");
    ASSERT_OK(a_set.Build(a_list));
    ASSERT_OK(d_set.Build(d_list));
    ASSERT_OK(a_set.Register(&catalog));
    ASSERT_OK(d_set.Register(&catalog));
    ASSERT_OK(catalog.Save());
    ASSERT_OK_AND_ASSIGN(JoinOutput out,
                         XrStackJoin(a_set.xrtree(), d_set.xrtree()));
    expected_pairs = out.stats.output_pairs;
    ASSERT_OK(db.pool()->FlushAll());
  }
  db.Reopen();
  Catalog catalog(db.pool());
  ASSERT_OK(catalog.Load());
  ASSERT_OK_AND_ASSIGN(StoredElementSet a_set,
                       StoredElementSet::Open(db.pool(), catalog, "A"));
  ASSERT_OK_AND_ASSIGN(StoredElementSet d_set,
                       StoredElementSet::Open(db.pool(), catalog, "D"));
  EXPECT_EQ(a_set.size(), a_list.size());
  ASSERT_OK(a_set.xrtree().CheckConsistency());
  ASSERT_OK_AND_ASSIGN(JoinOutput out,
                       XrStackJoin(a_set.xrtree(), d_set.xrtree()));
  EXPECT_EQ(out.stats.output_pairs, expected_pairs);
}

}  // namespace
}  // namespace xrtree
