// Reproduces Table 2: number of elements scanned (in thousands) when 99% of
// descendants join with a varying proportion of ancestors (§6.2).
//
// Columns per the paper: NIDX (Stack-Tree-Desc), B+ (Anc_Des_B+) and XR
// (XR-stack), over (a) employee//name — highly nested — and (b)
// paper//author — less nested.

#include <cstdio>

#include "bench/bench_common.h"

namespace xrtree {
namespace bench {
namespace {

void RunTable(const Dataset& ds, const char* label) {
  BenchEnv env = GetBenchEnv();
  PrintHeader(std::string("Table 2(") + label + ") " + ds.name +
              ": elements scanned (thousands), join-D held at 99%");
  std::printf("%8s %12s %8s %8s %8s %10s\n", "Join-A", "|D'|", "NIDX", "B+",
              "XR", "(achieved)");
  for (double sel : {0.90, 0.70, 0.55, 0.40, 0.25, 0.15, 0.05, 0.01}) {
    DerivedWorkload w =
        MakeAncestorSelectivity(ds.ancestors, ds.descendants, sel, 0.99);
    auto results = RunJoins(w.ancestors, w.descendants, env.buffer_pages,
                            env.miss_latency_us);
    std::printf("%7.0f%% %12zu %8s %8s %8s   a=%.2f d=%.2f\n", sel * 100,
                w.descendants.size(), Thousands(results[0].scanned).c_str(),
                Thousands(results[1].scanned).c_str(),
                Thousands(results[2].scanned).c_str(), w.achieved.join_a,
                w.achieved.join_d);
  }
}

}  // namespace
}  // namespace bench
}  // namespace xrtree

int main() {
  using namespace xrtree::bench;
  BenchEnv env = GetBenchEnv();
  std::printf("scale=%llu elements/dataset, buffer=%llu pages\n",
              (unsigned long long)env.scale,
              (unsigned long long)env.buffer_pages);
  RunTable(DepartmentDataset(), "a");
  RunTable(ConferenceDataset(), "b");
  return 0;
}
