#ifndef XRTREE_STORAGE_BUFFER_POOL_H_
#define XRTREE_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/disk_interface.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/wal.h"

namespace xrtree {

/// Fixed-capacity page cache with LRU replacement and pin counting, in the
/// shape of a classic textbook/System-R buffer manager. The paper fixes the
/// pool at 100 pages (§6.1); `bench/buffer_sensitivity` sweeps it.
///
/// All pages are accessed through FetchPage/NewPage which pin the frame;
/// callers must UnpinPage (or hold a PageGuard) when done. Pinned pages are
/// never evicted; fetching when every frame is pinned is an error (the index
/// code never pins more than a handful of pages at once).
///
/// The pool is also the integrity boundary: every physical write-back
/// stamps the page's PageTrailer (CRC32 + format version) and every fetch
/// from disk verifies it, so a torn, misdirected, bit-flipped or
/// pre-checksum page surfaces as Status::Corruption instead of silently
/// wrong query results.
///
/// With a Wal attached (SetWal), write-backs append page images to the log
/// instead of touching the data file, and misses consult the log's image
/// overlay before falling back to disk. Commit()/Checkpoint() then define
/// the atomic-durability protocol; the data file only ever advances from
/// one committed state to the next.
///
/// The pool also owns the free-page list: FreePage recycles a page id for
/// reuse by NewPage, and the Catalog persists the list across reopens so
/// deleted pages stop leaking.
class BufferPool {
 public:
  BufferPool(DiskInterface* disk, size_t pool_size);
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the pinned page `page_id`, reading it from disk on a miss.
  Result<Page*> FetchPage(PageId page_id);

  /// Allocates a fresh page and returns it pinned and zeroed.
  Result<Page*> NewPage();

  /// Drops a pin. `dirty` marks the page as needing write-back.
  Status UnpinPage(PageId page_id, bool dirty);

  /// Writes the page back if dirty. Page may be pinned or not.
  Status FlushPage(PageId page_id);

  /// Flushes every dirty page in the pool.
  Status FlushAll();

  /// Drops a page from the pool without writing it back. Pure cache
  /// eviction: the id is NOT recycled (see FreePage). Precondition: the
  /// page is unpinned.
  Status DiscardPage(PageId page_id);

  /// Frees a page: drops it from the pool (no write-back) and recycles its
  /// id into the free list, where NewPage will reuse it before allocating
  /// fresh pages. The Catalog persists the list across reopens.
  /// Precondition: the page is unpinned and not a reserved header page.
  Status FreePage(PageId page_id);

  /// Replaces the in-memory free list (Catalog::Load installs the persisted
  /// list at open time). Duplicates and reserved/invalid ids are rejected.
  Status SetFreeList(const std::vector<PageId>& pages);

  /// Snapshot of the current free list, sorted, for persistence.
  std::vector<PageId> FreeListSnapshot() const;

  /// Attaches (or detaches, with nullptr) a write-ahead log. The Wal must
  /// already be recovered. While attached, dirty pages are logged rather
  /// than written to the data file.
  void SetWal(Wal* wal);
  Wal* wal() const;

  /// Commits the current logical update: logs every dirty resident page,
  /// appends a commit record and fsyncs the log. If the log has outgrown
  /// its checkpoint threshold, also checkpoints. Requires an attached Wal.
  Status Commit();

  /// Applies the log's committed images to the data file and truncates the
  /// log. Call after Commit(). Requires an attached Wal.
  Status Checkpoint();

  size_t pool_size() const { return frames_.size(); }
  DiskInterface* disk() const { return disk_; }

  /// Records a failed unpin from a PageGuard release (a pin-accounting bug:
  /// the page was already unpinned or is no longer resident). Counted in
  /// IoStats::failed_unpins; aborts in debug builds.
  void NoteFailedUnpin(const Status& error);

  /// Pool-level hit/miss counters; disk read/write counters live on the
  /// DiskManager. `stats()` merges both views.
  IoStats stats() const;
  void ResetStats();

  /// Number of currently pinned frames (for tests/assertions).
  size_t pinned_frames() const;

 private:
  using FrameId = size_t;

  // Victim selection: least-recently-used unpinned frame. Caller holds mu_.
  bool FindVictim(FrameId* out);
  // Evicts the current occupant of `frame` (flushing if dirty). mu_ held.
  Status EvictFrame(FrameId frame);
  void TouchLru(FrameId frame);
  // Stamps the integrity trailer and writes the frame's page out. mu_ held.
  Status WriteBack(Page* page);

  DiskInterface* const disk_;
  Wal* wal_ = nullptr;
  std::vector<std::unique_ptr<Page>> frames_;
  std::unordered_map<PageId, FrameId> page_table_;
  std::list<FrameId> lru_;  // front = least recently used
  std::unordered_map<FrameId, std::list<FrameId>::iterator> lru_pos_;
  std::vector<FrameId> free_frames_;
  // Recycled page ids. free_set_ mirrors free_pages_ to keep FreePage
  // idempotent (double-free must not hand the same id out twice).
  std::vector<PageId> free_pages_;
  std::unordered_set<PageId> free_set_;
  mutable std::mutex mu_;
  IoStats stats_;
};

/// RAII pin holder. Unpins (with the recorded dirty flag) on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, Page* page) : pool_(pool), page_(page) {}

  PageGuard(PageGuard&& other) noexcept { *this = std::move(other); }
  PageGuard& operator=(PageGuard&& other) noexcept {
    if (this != &other) {
      Release();
      pool_ = other.pool_;
      page_ = other.page_;
      dirty_ = other.dirty_;
      other.pool_ = nullptr;
      other.page_ = nullptr;
      other.dirty_ = false;
    }
    return *this;
  }

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

  ~PageGuard() { Release(); }

  Page* get() const { return page_; }
  Page* operator->() const { return page_; }
  explicit operator bool() const { return page_ != nullptr; }
  PageId page_id() const { return page_ ? page_->page_id() : kInvalidPageId; }

  void MarkDirty() { dirty_ = true; }

  /// Unpins now instead of at scope end. A failed unpin is a pin-accounting
  /// bug: it is counted in IoStats::failed_unpins (and aborts debug builds)
  /// rather than silently swallowed.
  void Release() {
    if (pool_ != nullptr && page_ != nullptr) {
      Status unpin = pool_->UnpinPage(page_->page_id(), dirty_);
      if (!unpin.ok()) pool_->NoteFailedUnpin(unpin);
    }
    pool_ = nullptr;
    page_ = nullptr;
    dirty_ = false;
  }

 private:
  BufferPool* pool_ = nullptr;
  Page* page_ = nullptr;
  bool dirty_ = false;
};

}  // namespace xrtree

#endif  // XRTREE_STORAGE_BUFFER_POOL_H_
