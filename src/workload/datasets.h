#ifndef XRTREE_WORKLOAD_DATASETS_H_
#define XRTREE_WORKLOAD_DATASETS_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "xml/corpus.h"
#include "xml/element.h"

namespace xrtree {

/// One evaluation dataset: the generated corpus plus the two base element
/// sets of the paper's join queries.
struct Dataset {
  std::string name;
  std::string ancestor_tag;
  std::string descendant_tag;
  Corpus corpus;
  ElementList ancestors;
  ElementList descendants;
  uint32_t max_nesting = 0;  ///< h_d of the ancestor tag
};

/// The "highly nested" dataset (Fig. 6a): Department DTD, join
/// employee // name. Matches the DTD used by Chien et al.
Result<Dataset> MakeDepartmentDataset(uint64_t target_elements,
                                      uint64_t seed = 20030305);

/// The "less nested" dataset (Fig. 6b): Conference DTD, join
/// paper // author.
Result<Dataset> MakeConferenceDataset(uint64_t target_elements,
                                      uint64_t seed = 20030305);

/// XMark-flavoured dataset for the §3.3 stab-list study: deep
/// parlist/listitem recursion; join listitem // text.
Result<Dataset> MakeXMarkDataset(uint64_t target_elements,
                                 uint64_t seed = 20030305);

/// XMach-flavoured dataset (the study's other benchmark): recursive
/// sections; join section // paragraph.
Result<Dataset> MakeXMachDataset(uint64_t target_elements,
                                 uint64_t seed = 20030305);

}  // namespace xrtree

#endif  // XRTREE_WORKLOAD_DATASETS_H_
