# Empty dependencies file for table2_scan_ancestors.
# This may be replaced when dependencies are built.
